// End-to-end tests for the sbd::serve scenario: keep-alive request
// sequences, concurrent clients with the conservation invariant,
// injected faults mid-flight, and drain-on-shutdown. Clients here are
// plain threads speaking HTTP over the loopback network — exactly what
// bench_serve does, minus the load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "db/db.h"
#include "net/http.h"
#include "net/loopback.h"
#include "serve/serve.h"

namespace sbd::serve {
namespace {

// Unique port per TEST: the loopback network and the serve counters are
// process-global, and tests in one binary share both.
std::atomic<int> gNextPort{9100};

struct Client {
  net::Socket sock;
  int port;

  explicit Client(int p) : port(p) { redial(); }
  void redial() { sock = net::Network::instance().connect(port, 2000); }

  // Sends one request; returns the response status, or -1 if the
  // connection died (reset/short write).
  int request(const std::string& method, const std::string& path,
              const std::string& body, std::string* out = nullptr) {
    net::HttpRequest req;
    req.method = method;
    req.path = path;
    req.body = body;
    sock.write(net::serialize(req));
    net::HttpResponse resp;
    auto readFn = [&](void* o, size_t n) { return sock.read(o, n); };
    if (net::read_response_status(readFn, resp) != net::ReadStatus::kOk) return -1;
    if (out) *out = resp.body;
    return resp.status;
  }

  void close() {
    sock.close();
    sock = net::Socket();
  }
};

struct ServerFixture {
  db::Database db;
  Config cfg;
  std::unique_ptr<Server> server;

  explicit ServerFixture(int workers = 4, int accounts = 16,
                         int64_t balance = 1000) {
    cfg.port = gNextPort.fetch_add(1);
    cfg.workers = workers;
    ensure_tables(db);
    if (accounts) seed_accounts(db, accounts, balance);
    server = std::make_unique<Server>(db, cfg);
    server->start();
  }
};

TEST(Serve, KeepAliveServesManyRequestsOnOneConnection) {
  ServerFixture f;
  Client c(f.cfg.port);
  std::string body;
  EXPECT_EQ(c.request("GET", "/kv/1", ""), 404);
  EXPECT_EQ(c.request("PUT", "/kv/1", "hello"), 201);
  EXPECT_EQ(c.request("GET", "/kv/1", "", &body), 200);
  EXPECT_EQ(body, "hello");
  EXPECT_EQ(c.request("PUT", "/kv/1", "bye"), 200);  // update, not create
  EXPECT_EQ(c.request("GET", "/kv/1", "", &body), 200);
  EXPECT_EQ(body, "bye");
  EXPECT_EQ(c.request("GET", "/nope", ""), 404);
  c.close();
  f.server->shutdown();
}

TEST(Serve, TxferMovesMoneyAndRejectsBadTransfers) {
  ServerFixture f;
  Client c(f.cfg.port);
  std::string body;
  EXPECT_EQ(c.request("POST", "/txfer", "from=0&to=1&amount=300"), 200);
  EXPECT_EQ(c.request("POST", "/txfer", "from=0&to=1&amount=800"), 409);  // only 700 left
  EXPECT_EQ(c.request("POST", "/txfer", "from=0&to=99&amount=1"), 404);  // no account 99
  EXPECT_EQ(c.request("POST", "/txfer", "from=0&to=1"), 400);            // missing field
  c.close();
  f.server->shutdown();
  EXPECT_EQ(total_balance(f.db), 16 * 1000);
}

TEST(Serve, MalformedContentLengthGets400AndConnectionClose) {
  // The acceptance criterion for the old std::stoul crash: hostile
  // framing answers 4xx and closes; the server keeps serving others.
  ServerFixture f;
  Client bad(f.cfg.port);
  bad.sock.write("POST /kv/1 HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  net::HttpResponse resp;
  auto readFn = [&](void* o, size_t n) { return bad.sock.read(o, n); };
  ASSERT_EQ(net::read_response_status(readFn, resp), net::ReadStatus::kOk);
  EXPECT_EQ(resp.status, 400);
  char one;
  EXPECT_EQ(bad.sock.read(&one, 1), 0u);  // server closed the connection
  bad.close();

  Client good(f.cfg.port);  // the server survived
  EXPECT_EQ(good.request("PUT", "/kv/5", "v"), 201);
  good.close();
  f.server->shutdown();
}

TEST(Serve, OversizedBodyGets413) {
  ServerFixture f;
  Client c(f.cfg.port);
  net::HttpRequest req;
  req.method = "PUT";
  req.path = "/kv/1";
  req.body = std::string(net::kMaxBodyBytes + 1, 'x');
  c.sock.write(net::serialize(req));
  net::HttpResponse resp;
  auto readFn = [&](void* o, size_t n) { return c.sock.read(o, n); };
  ASSERT_EQ(net::read_response_status(readFn, resp), net::ReadStatus::kOk);
  EXPECT_EQ(resp.status, 413);
  c.close();
  f.server->shutdown();
}

TEST(Serve, ConcurrentClientsConserveTotalBalance) {
  ServerFixture f(/*workers=*/4, /*accounts=*/8, /*balance=*/1000);
  constexpr int kClients = 6, kRequests = 40;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      Client c(f.cfg.port);
      for (int i = 0; i < kRequests; i++) {
        const int from = (t + i) % 8, to = (t + i * 3 + 1) % 8;
        const int st = c.request("POST", "/txfer",
                                 "from=" + std::to_string(from) +
                                     "&to=" + std::to_string(to) + "&amount=1");
        if (st == 200 || st == 409) ok++;
      }
      c.close();
    });
  }
  for (auto& th : threads) th.join();
  f.server->shutdown();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(total_balance(f.db), 8 * 1000);
}

TEST(Serve, SocketResetMidFlightLeavesInvariantsIntact) {
  ServerFixture f(/*workers=*/4, /*accounts=*/8, /*balance=*/1000);
  fault::PlanScope scope(fault::single_site(fault::Site::kSocketReset, 0.05, 7));
  constexpr int kClients = 4, kRequests = 30;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; t++) {
    threads.emplace_back([&, t] {
      Client c(f.cfg.port);
      for (int i = 0; i < kRequests; i++) {
        const int st = c.request("POST", "/txfer",
                                 "from=" + std::to_string((t + i) % 8) +
                                     "&to=" + std::to_string((t + i + 1) % 8) +
                                     "&amount=1");
        if (st < 0) {  // connection reset: re-dial and carry on
          c.close();
          c.redial();
        }
      }
      c.close();
    });
  }
  for (auto& th : threads) th.join();
  f.server->shutdown();
  EXPECT_EQ(total_balance(f.db), 8 * 1000);
}

TEST(Serve, AcceptFailFaultDropsConnectionButServerSurvives) {
  ServerFixture f;
  fault::PlanScope scope(fault::single_site(fault::Site::kServeAcceptFail, 1.0, 3));
  {
    // Every accept fails: the client sees EOF on a valid socket.
    Client c(f.cfg.port);
    char one;
    EXPECT_EQ(c.sock.read(&one, 1), 0u);
    c.close();
  }
  fault::clear_plan();
  Client c2(f.cfg.port);
  EXPECT_EQ(c2.request("PUT", "/kv/1", "alive"), 201);
  c2.close();
  f.server->shutdown();
}

TEST(Serve, WriteShortFaultTruncatesResponseButCommits) {
  ServerFixture f;
  {
    Client setup(f.cfg.port);
    ASSERT_EQ(setup.request("PUT", "/kv/1", "committed"), 201);
    setup.close();
  }
  {
    fault::PlanScope scope(fault::single_site(fault::Site::kServeWriteShort, 1.0, 5));
    Client c(f.cfg.port);
    // The response is cut mid-write and the connection dropped: the
    // client cannot parse it...
    EXPECT_EQ(c.request("PUT", "/kv/1", "lost-ack"), -1);
    c.close();
  }
  // ...but the transaction committed before the write fault (same as a
  // TCP connection dying after the server's commit point).
  Client check(f.cfg.port);
  std::string body;
  EXPECT_EQ(check.request("GET", "/kv/1", "", &body), 200);
  EXPECT_EQ(body, "lost-ack");
  check.close();
  f.server->shutdown();
}

TEST(Serve, ShutdownDrainsInFlightRequestsThenStops) {
  ServerFixture f(/*workers=*/2);
  Client c(f.cfg.port);
  EXPECT_EQ(c.request("PUT", "/kv/1", "before"), 201);
  f.server->shutdown();
  EXPECT_FALSE(f.server->running());
  // The drained connection reads EOF now.
  char one;
  EXPECT_EQ(c.sock.read(&one, 1), 0u);
  c.close();
  // The row survived the shutdown (committed, not drained away).
  auto conn = f.db.connect();
  auto rs = conn->execute("SELECT v FROM kv WHERE k = ?", {int64_t{1}});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.str_at(0, 0), "before");
}

TEST(Serve, ShutdownIsIdempotentAndRestartableProcessWide) {
  ServerFixture f;
  f.server->shutdown();
  f.server->shutdown();  // second call is a no-op
  // A fresh server on a fresh port serves again in the same process.
  ServerFixture g;
  Client c(g.cfg.port);
  EXPECT_EQ(c.request("PUT", "/kv/2", "again"), 201);
  c.close();
  g.server->shutdown();
}

TEST(Serve, MetricsSectionIsValidJsonShape) {
  ServerFixture f;
  Client c(f.cfg.port);
  EXPECT_EQ(c.request("PUT", "/kv/3", "m"), 201);
  c.close();
  f.server->shutdown();
  const std::string m = metrics_section();
  EXPECT_EQ(m.front(), '{');
  EXPECT_EQ(m.back(), '}');
  EXPECT_NE(m.find("\"accepted\":"), std::string::npos);
  EXPECT_NE(m.find("\"abortPerRequest\":"), std::string::npos);
  EXPECT_NE(m.find("\"parkedWaiterDepth\":"), std::string::npos);
}

}  // namespace
}  // namespace sbd::serve
