// Substrate fault injection (tio): transient I/O errors are retried,
// short writes are continued, and injected section aborts discard
// deferred output — the file ends up byte-identical to a clean run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/sbd.h"
#include "core/fault.h"
#include "tio/file.h"

namespace sbd::tio {
namespace {

std::string tmp_path(const char* name) {
  return std::string("/tmp/sbd_tio_fault_") + name + "_" + std::to_string(getpid());
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string expected_records(int count) {
  std::string out;
  for (int i = 0; i < count; i++) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rec-%03d\n", i);
    out += buf;
  }
  return out;
}

TEST(TioFault, TransientErrorsAndShortWritesLeaveContentIntact) {
  const std::string path = tmp_path("werr");
  {
    fault::FaultPlan p;
    p.seed = 31;
    p.with(fault::Site::kFileError, 0.4).with(fault::Site::kFileShortWrite, 0.4);
    fault::PlanScope plan(p);
    TxFileWriter w(path);
    run_sbd([&] {
      for (int i = 0; i < 50; i++) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "rec-%03d\n", i);
        w.write(buf);
        split();  // commit drives the faulty write path
      }
    });
    EXPECT_GT(fault::fired(fault::Site::kFileError), 0u);
    EXPECT_GT(fault::fired(fault::Site::kFileShortWrite), 0u);
  }
  EXPECT_EQ(slurp(path), expected_records(50));
  std::remove(path.c_str());
}

TEST(TioFault, InjectedAbortsNeitherDuplicateNorLoseRecords) {
  // Section aborts discard the deferred buffer; the retry re-deposits
  // it. With write faults layered on top, every record must still land
  // exactly once, in order.
  const std::string path = tmp_path("abort");
  {
    fault::FaultPlan p;
    p.seed = 7;
    p.with(fault::Site::kSplitAbort, 0.3)
        .with(fault::Site::kFileError, 0.3)
        .with(fault::Site::kFileShortWrite, 0.3);
    fault::PlanScope plan(p);
    TxFileWriter w(path);
    run_sbd([&] {
      for (int i = 0; i < 40; i++) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "rec-%03d\n", i);
        w.write(buf);
        split();
      }
    });
    EXPECT_GT(fault::fired(fault::Site::kSplitAbort), 0u);
  }
  EXPECT_EQ(slurp(path), expected_records(40));
  std::remove(path.c_str());
}

TEST(TioFault, ReaderRetriesTransientErrors) {
  const std::string path = tmp_path("rerr");
  {
    TxFileWriter w(path);
    w.write("abcdefghij");
  }
  fault::PlanScope plan(fault::single_site(fault::Site::kFileError, 0.5, 3));
  TxFileReader r(path);
  ASSERT_TRUE(r.ok());
  run_sbd([&] {
    char buf[16] = {};
    size_t got = 0;
    while (got < 10) {
      const size_t n = r.read(buf + got, 10 - got);
      if (n == 0) break;
      got += n;
    }
    EXPECT_EQ(std::string(buf, got), "abcdefghij");
  });
  EXPECT_GT(fault::evaluated(fault::Site::kFileError), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sbd::tio
