// Transactional I/O wrappers: deferral, replay, abort semantics (§3.4/§4.4).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/sbd.h"
#include "tio/console.h"
#include "tio/file.h"

namespace sbd::tio {
namespace {

std::string tmp_path(const char* name) {
  return std::string("/tmp/sbd_tio_test_") + name + "_" + std::to_string(getpid());
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

class ConsoleCapture {
 public:
  ConsoleCapture() {
    TxConsole::clear_captured();
    TxConsole::capture_to_string(true);
  }
  ~ConsoleCapture() { TxConsole::capture_to_string(false); }
};

TEST(Console, OutputDeferredUntilSectionEnd) {
  ConsoleCapture cap;
  run_sbd([&] {
    TxConsole::print("hello");
    EXPECT_EQ(TxConsole::captured(), "") << "output must not be visible mid-section";
    EXPECT_EQ(TxConsole::pending_bytes(), 5u);
    split();
    EXPECT_EQ(TxConsole::captured(), "hello");
    EXPECT_EQ(TxConsole::pending_bytes(), 0u);
  });
}

TEST(Console, AbortDiscardsOutput) {
  ConsoleCapture cap;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    TxConsole::print("doomed;");
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  // The aborted attempt printed "doomed;" once and was rolled back; the
  // retry printed it again and committed. Exactly one copy must appear.
  EXPECT_EQ(TxConsole::captured(), "doomed;");
}

TEST(Console, DirectWhenOutsideSection) {
  ConsoleCapture cap;
  TxConsole::print("direct");
  EXPECT_EQ(TxConsole::captured(), "direct");
}

TEST(Console, PerThreadAggregationIsAtomic) {
  ConsoleCapture cap;
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < 20; i++) {
          const std::string tag(3, static_cast<char>('a' + t));
          TxConsole::print(tag);  // 3 chars, one section each
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  // Sections commit atomically: every 3-char group is homogeneous.
  const std::string out = TxConsole::captured();
  ASSERT_EQ(out.size(), 180u);
  for (size_t i = 0; i < out.size(); i += 3) {
    EXPECT_EQ(out[i], out[i + 1]);
    EXPECT_EQ(out[i], out[i + 2]);
  }
}

TEST(FileWriter, CommitAppliesAbortDiscards) {
  const std::string path = tmp_path("writer");
  {
    TxFileWriter w(path);
    run_sbd([&] {
      static bool aborted;
      aborted = false;
      split();
      w.write("A");
      EXPECT_EQ(w.committed_bytes(), 0u) << "write must be deferred";
      if (!aborted) {
        aborted = true;
        core::abort_and_restart(core::tls_context());
      }
      split();  // commit: exactly one "A" (the retry's) lands
      EXPECT_EQ(w.committed_bytes(), 1u);
    });
  }
  EXPECT_EQ(slurp(path), "A");
  std::remove(path.c_str());
}

TEST(FileWriter, MultipleSectionsAppendInOrder) {
  const std::string path = tmp_path("append");
  {
    TxFileWriter w(path);
    run_sbd([&] {
      w.write("one ");
      split();
      w.write("two ");
      split();
      w.write("three");
    });
  }
  EXPECT_EQ(slurp(path), "one two three");
  std::remove(path.c_str());
}

TEST(FileWriter, DirectOutsideSection) {
  const std::string path = tmp_path("direct");
  {
    TxFileWriter w(path);
    w.write("now");
    EXPECT_EQ(w.committed_bytes(), 3u);
  }
  EXPECT_EQ(slurp(path), "now");
  std::remove(path.c_str());
}

TEST(FileReader, ReplayAfterAbortServesSameBytes) {
  const std::string path = tmp_path("reader");
  {
    TxFileWriter w(path);
    w.write("abcdefghij");
  }
  TxFileReader r(path);
  ASSERT_TRUE(r.ok());
  std::string firstAttempt, retryAttempt;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    char buf[5] = {};
    ASSERT_EQ(r.read(buf, 4), 4u);
    if (!aborted) {
      aborted = true;
      firstAttempt.assign(buf, 4);
      core::abort_and_restart(core::tls_context());
    }
    retryAttempt.assign(buf, 4);
    split();
  });
  EXPECT_EQ(firstAttempt, "abcd");
  EXPECT_EQ(retryAttempt, "abcd") << "the retry must see the same input (B_R replay)";
  // After commit the stream continues where the section left off.
  run_sbd([&] {
    char buf[7] = {};
    EXPECT_EQ(r.read(buf, 6), 6u);
    EXPECT_EQ(std::string(buf, 6), "efghij");
  });
  std::remove(path.c_str());
}

TEST(FileReader, ReadLineSplitsOnNewlines) {
  const std::string path = tmp_path("lines");
  {
    TxFileWriter w(path);
    w.write("first\nsecond\nlast");
  }
  TxFileReader r(path);
  run_sbd([&] {
    std::string line;
    EXPECT_TRUE(r.read_line(line));
    EXPECT_EQ(line, "first");
    EXPECT_TRUE(r.read_line(line));
    EXPECT_EQ(line, "second");
    EXPECT_TRUE(r.read_line(line));
    EXPECT_EQ(line, "last");
    EXPECT_FALSE(r.read_line(line));
  });
  std::remove(path.c_str());
}

TEST(FileReader, EofReturnsZero) {
  const std::string path = tmp_path("eof");
  {
    TxFileWriter w(path);
    w.write("x");
  }
  TxFileReader r(path);
  run_sbd([&] {
    char c;
    EXPECT_EQ(r.read(&c, 1), 1u);
    EXPECT_EQ(r.read(&c, 1), 0u);
  });
  std::remove(path.c_str());
}

TEST(ReplayBuffer, ServeThenConsumeInterleaved) {
  ReplayBuffer rb;
  rb.consumed("abc", 3);
  rb.on_abort();  // rearm
  char out[8] = {};
  EXPECT_EQ(rb.serve(out, 2), 2u);
  EXPECT_EQ(std::string(out, 2), "ab");
  EXPECT_EQ(rb.serve(out, 8), 1u);  // only 'c' left
  EXPECT_EQ(out[0], 'c');
  EXPECT_TRUE(rb.exhausted());
  rb.consumed("de", 2);
  rb.on_abort();
  EXPECT_EQ(rb.serve(out, 8), 5u);  // full replay: abcde
  EXPECT_EQ(std::string(out, 5), "abcde");
  rb.on_commit();
  EXPECT_EQ(rb.size(), 0u);
}

TEST(DeferBuffer, AccumulatesAndClears) {
  DeferBuffer db;
  db.append("ab");
  db.append("cd", 2);
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(db.bytes().data()), 4), "abcd");
  db.clear();
  EXPECT_TRUE(db.empty());
}

TEST(BufferBytesReportedForTable8, WriterCountsPending) {
  const std::string path = tmp_path("t8");
  TxFileWriter w(path);
  run_sbd([&] {
    w.write("12345");
    EXPECT_EQ(core::tls_context().txn.buffer_bytes(), 5u);
    split();
    EXPECT_EQ(core::tls_context().txn.buffer_bytes(), 0u);
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sbd::tio
