// The SBD-IL textual assembler.
#include "il/asm.h"

#include <gtest/gtest.h>

#include "api/sbd.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "il/verify.h"

namespace sbd::il {
namespace {

TEST(IlAsm, AssemblesArithmetic) {
  Module m;
  assemble(m, R"(
    fn addmul(a, b) {
      t = add a b
      two = 2
      r = mul t two
      ret r
    }
  )");
  ASSERT_NE(m.get("addmul"), nullptr);
  EXPECT_TRUE(verify(m).empty());
  run_sbd([&] { EXPECT_EQ(execute(m, "addmul", {3, 4}), 14); });
}

TEST(IlAsm, LabelsAndBranches) {
  Module m;
  assemble(m, R"(
    # sum of 0..n-1
    fn sumto(n) {
    entry:
      i = 0
      s = 0
      one = 1
      br loop
    loop:
      c = lt i n
      cbr c body done
    body:
      s = add s i
      i = add i one
      br loop
    done:
      ret s
    }
  )");
  run_sbd([&] { EXPECT_EQ(execute(m, "sumto", {10}), 45); });
}

TEST(IlAsm, FieldAndArrayAccess) {
  Module m;
  assemble(m, R"(
    fn touch(unused) {
      p = new Box/2
      v = 41
      setf p.0 = v
      x = getf p.0
      one = 1
      x = add x one
      setf p.1 = x
      y = getf p.1
      n = 8
      arr = newarr [n]
      i = 3
      sete arr[i] = y
      z = gete arr[i]
      ret z
    }
  )");
  ASSERT_TRUE(verify(m).empty());
  run_sbd([&] { EXPECT_EQ(execute(m, "touch", {0}), 42); });
}

TEST(IlAsm, CallsAndSplit) {
  Module m;
  assemble(m, R"(
    fn helper(x) {
      two = 2
      r = mul x two
      ret r
    }
    fn main(n) canSplit {
      a = call helper (n)
      split
      b = call helper (a)
      ret b
    }
  )");
  ASSERT_TRUE(verify(m).empty());
  run_sbd([&] { EXPECT_EQ(execute(m, "main", {5}), 20); });
}

TEST(IlAsm, AllowSplitAnnotation) {
  Module m;
  assemble(m, R"(
    fn splitter() canSplit {
      split
      ret
    }
    fn caller() canSplit {
      call splitter () allowSplit
      ret
    }
  )");
  EXPECT_TRUE(verify(m).empty());
}

TEST(IlAsm, VerifierCatchesMissingAllowSplit) {
  Module m;
  assemble(m, R"(
    fn splitter() canSplit {
      split
      ret
    }
    fn caller() canSplit {
      call splitter ()
      ret
    }
  )");
  EXPECT_FALSE(verify(m).empty());
}

TEST(IlAsm, ErrorsCarryLineNumbers) {
  Module m;
  try {
    assemble(m, "fn f() {\n  bogus stmt here\n}\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(IlAsm, RejectsStatementOutsideFunction) {
  Module m;
  EXPECT_THROW(assemble(m, "x = 1\n"), AsmError);
}

TEST(IlAsm, RejectsUnterminatedFunction) {
  Module m;
  EXPECT_THROW(assemble(m, "fn f() {\n  ret\n"), AsmError);
}

TEST(IlAsm, AssembledCodeOptimizes) {
  Module m;
  assemble(m, R"(
    fn reads(p) {
      a = getf p.0
      b = getf p.0
      c = add a b
      ret c
    }
  )");
  insert_locks(m);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  run_sbd([&] {
    auto* cls = runtime::register_class("AsmOptProbe", {{"f", false, false}});
    auto* o = runtime::Heap::instance().alloc_object(cls);
    runtime::init_write(o, 0, 21);
    split();
    EXPECT_EQ(execute(m, "reads", {reinterpret_cast<int64_t>(o)}), 42);
  });
}

}  // namespace
}  // namespace sbd::il
