// Differential testing of the two IL execution backends: every program
// — random and directed, raw and optimized — must produce the same
// result AND the same StatsCounters lock-op delta under the tree
// interpreter and the threaded-code backend, and full traces of both
// must pass the happens-before oracle. Registered once per
// lock-granularity mode in tests/CMakeLists.txt (the mode is parsed
// once per process), so bit-identity holds under field, striped,
// object, adaptive, and versioned maps.
//
// Also the home of the interprocedural-elimination unit tests
// (compute_summaries, crossCallEliminated, optimize() fixpoint) and the
// verifier negative fixtures (V5 call checks, V6 coverage / lock-mode
// mismatch against callee summaries).
#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "analyzer/oracle.h"
#include "api/sbd.h"
#include "common/rng.h"
#include "core/obs.h"
#include "il/compile.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/summary.h"
#include "il/transform.h"
#include "il/verify.h"

namespace sbd::il {
namespace {

runtime::ClassInfo* obj_class() {
  static runtime::ClassInfo* ci = runtime::register_class(
      "BackendObj", {{"f0", false, false}, {"f1", false, false}, {"f2", false, false}});
  return ci;
}

// The lock-operation effects both backends must agree on exactly, plus
// the versioned-granularity counters (stamped reads and validations are
// lock operations in the Table 7 sense).
struct Delta {
  uint64_t lockInit = 0, checkNew = 0, checkOwned = 0, acqRls = 0;
  uint64_t versionedReads = 0, validations = 0, versionAborts = 0;
  uint64_t commits = 0;

  uint64_t lock_ops() const { return lockInit + checkNew + checkOwned + acqRls; }

  bool operator==(const Delta& o) const {
    return lockInit == o.lockInit && checkNew == o.checkNew &&
           checkOwned == o.checkOwned && acqRls == o.acqRls &&
           versionedReads == o.versionedReads && validations == o.validations &&
           versionAborts == o.versionAborts && commits == o.commits;
  }
  friend std::ostream& operator<<(std::ostream& os, const Delta& d) {
    return os << "{init=" << d.lockInit << " new=" << d.checkNew
              << " owned=" << d.checkOwned << " acqRls=" << d.acqRls
              << " vReads=" << d.versionedReads << " vVal=" << d.validations
              << " vAbort=" << d.versionAborts << " commits=" << d.commits << "}";
  }
};

Delta make_delta(const core::StatsCounters& d) {
  Delta out;
  out.lockInit = d.lockInit;
  out.checkNew = d.checkNew;
  out.checkOwned = d.checkOwned;
  out.acqRls = d.acqRls;
  out.versionedReads = d.versionedReads;
  out.validations = d.validations;
  out.versionAborts = d.versionAborts;
  out.commits = d.commits;
  return out;
}

struct Outcome {
  int64_t result = 0;
  Delta delta;
};

enum class Backend { kInterp, kCompiled };

// One measured run: fresh escaped object, then the program under the
// chosen backend with the stats window around exactly the execution.
Outcome run_one(const Module& m, const CompiledModule& cm, Backend be,
                const std::string& entry, int64_t scratch, int numArgs) {
  Outcome out;
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(obj_class());
    runtime::init_write(o, 0, 3);
    runtime::init_write(o, 1, 5);
    runtime::init_write(o, 2, 7);
    split();  // escape: accesses must lock
    std::vector<int64_t> args{reinterpret_cast<int64_t>(o)};
    if (numArgs > 1) args.push_back(scratch);
    auto& tc = core::tls_context();
    const auto before = tc.stats;
    out.result = be == Backend::kCompiled ? execute(cm, entry, args)
                                          : execute(m, entry, args);
    out.delta = make_delta(tc.stats.diff(before));
  });
  return out;
}

// Asserts the bit-identity contract on one module: same result, same
// lock-op delta, both backends.
void expect_backends_agree(const Module& m, const std::string& entry, int64_t scratch,
                           int numArgs, const char* tag) {
  const CompiledModule cm = compile(m);
  const Outcome i = run_one(m, cm, Backend::kInterp, entry, scratch, numArgs);
  const Outcome c = run_one(m, cm, Backend::kCompiled, entry, scratch, numArgs);
  EXPECT_EQ(i.result, c.result) << tag << " scratch=" << scratch;
  EXPECT_EQ(i.delta, c.delta) << tag << " scratch=" << scratch
                              << ": backends disagree on lock operations";
}

// --- Program generators ------------------------------------------------------

// Random straight-line + diamond field programs (same shape as
// il_differential_test, which covers optimizer-vs-plain; here the axis
// is interp-vs-compiled).
void generate(Module& m, Rng& rng) {
  FnBuilder fb(m, "f", 2, 10);
  const int numOps = 6 + static_cast<int>(rng.below(14));
  for (int i = 0; i < numOps; i++) {
    const int dst = 2 + static_cast<int>(rng.below(7));
    switch (rng.below(6)) {
      case 0:
        fb.cst(dst, static_cast<int64_t>(rng.below(100)));
        break;
      case 1:
        fb.getf(dst, 0, static_cast<int>(rng.below(3)), obj_class());
        break;
      case 2:
        fb.setf(0, static_cast<int>(rng.below(3)), dst, obj_class());
        break;
      case 3:
        fb.bin(dst, BinOp::kAdd, 2 + static_cast<int>(rng.below(7)),
               2 + static_cast<int>(rng.below(7)));
        break;
      case 4:
        fb.bin(dst, BinOp::kXor, 1, 2 + static_cast<int>(rng.below(7)));
        break;
      case 5: {
        const int thenB = fb.block();
        const int elseB = fb.block();
        const int merge = fb.block();
        fb.cbr(1, thenB, elseB);
        fb.at(thenB);
        fb.getf(dst, 0, 0, obj_class());
        fb.br(merge);
        fb.at(elseB);
        fb.setf(0, 1, 1, obj_class());
        fb.br(merge);
        fb.at(merge);
        break;
      }
    }
  }
  fb.getf(3, 0, 0, obj_class());
  fb.getf(4, 0, 1, obj_class());
  fb.getf(5, 0, 2, obj_class());
  fb.bin(6, BinOp::kAdd, 3, 4);
  fb.bin(6, BinOp::kAdd, 6, 5);
  fb.ret(6);
}

// canSplit loop: f0 += 1, iters times, one split per iteration —
// exercises kSplit, branches, and the re-lock after every split.
void build_worker(Module& m) {
  FnBuilder fb(m, "worker", 2, 8);  // l0 = object, l1 = iterations
  fb.can_split();
  const int head = fb.block();
  const int body = fb.block();
  const int done = fb.block();
  fb.cst(2, 0);  // i
  fb.cst(5, 1);  // const 1
  fb.br(head);
  fb.at(head);
  fb.bin(3, BinOp::kLt, 2, 1);
  fb.cbr(3, body, done);
  fb.at(body);
  fb.getf(4, 0, 0, obj_class());
  fb.bin(4, BinOp::kAdd, 4, 5);
  fb.setf(0, 0, 4, obj_class());
  fb.split();
  fb.bin(2, BinOp::kAdd, 2, 5);
  fb.br(head);
  fb.at(done);
  fb.getf(6, 0, 0, obj_class());
  fb.ret(6);
}

// Array program: a = new i64[n]; a[i] = 2i; sum + len == n^2.
// Exercises kNewArr/kSetE/kGetE/kLen and this-transaction-new coverage.
void build_array_fn(Module& m) {
  FnBuilder fb(m, "arr", 2, 8);  // l0 = object (unused), l1 = n
  const int h1 = fb.block();
  const int b1 = fb.block();
  const int mid = fb.block();
  const int h2 = fb.block();
  const int b2 = fb.block();
  const int done = fb.block();
  fb.new_arr(2, runtime::ElemKind::kI64, 1);
  fb.cst(3, 0);  // i
  fb.cst(4, 1);  // const 1
  fb.cst(5, 2);  // const 2
  fb.cst(6, 0);  // acc
  fb.br(h1);
  fb.at(h1);
  fb.bin(7, BinOp::kLt, 3, 1);
  fb.cbr(7, b1, mid);
  fb.at(b1);
  fb.bin(7, BinOp::kMul, 3, 5);
  fb.sete(2, 3, 7);
  fb.bin(3, BinOp::kAdd, 3, 4);
  fb.br(h1);
  fb.at(mid);
  fb.cst(3, 0);
  fb.br(h2);
  fb.at(h2);
  fb.bin(7, BinOp::kLt, 3, 1);
  fb.cbr(7, b2, done);
  fb.at(b2);
  fb.gete(7, 2, 3);
  fb.bin(6, BinOp::kAdd, 6, 7);
  fb.bin(3, BinOp::kAdd, 3, 4);
  fb.br(h2);
  fb.at(done);
  fb.len(7, 2);
  fb.bin(6, BinOp::kAdd, 6, 7);
  fb.ret(6);
}

// Caller/callee pair for the interprocedural pass: `reader` must-locks
// f0 and f1 of its parameter on every path to its return; `main`
// re-reads both after the call, so O1+summaries can drop both of its
// locks. The callee is padded past the inline threshold so O3 cannot
// turn the cross-call case into an intraprocedural one.
void build_interproc(Module& m) {
  {
    FnBuilder fb(m, "reader", 1, 6);
    for (int k = 0; k < 26; k++) fb.cst(1, k);
    fb.getf(2, 0, 0, obj_class());
    fb.getf(3, 0, 1, obj_class());
    fb.bin(4, BinOp::kAdd, 2, 3);
    fb.ret(4);
  }
  {
    FnBuilder fb(m, "main", 1, 6);
    fb.call(1, "reader", {0});
    fb.getf(2, 0, 0, obj_class());
    fb.getf(3, 0, 1, obj_class());
    fb.bin(4, BinOp::kAdd, 1, 2);
    fb.bin(4, BinOp::kAdd, 4, 3);
    fb.ret(4);
  }
}

bool has_diag(const std::vector<std::string>& diags, const std::string& needle) {
  for (const auto& d : diags)
    if (d.find(needle) != std::string::npos) return true;
  return false;
}

void erase_first_lock(Function& f, LockMode mode) {
  for (auto& b : f.blocks)
    for (auto it = b.instrs.begin(); it != b.instrs.end(); ++it)
      if (it->op == Op::kLock && it->mode == mode) {
        b.instrs.erase(it);
        return;
      }
}

// --- Random differential: interp vs compiled, raw and optimized -------------

class IlBackendDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlBackendDiff, CompiledIsBitIdenticalToInterp) {
  Rng rngA(GetParam()), rngB(GetParam());
  Module plain, optimized;
  generate(plain, rngA);
  generate(optimized, rngB);
  insert_locks(plain);
  insert_locks(optimized);
  ASSERT_TRUE(verify(plain).empty());
  optimize(optimized);
  ASSERT_TRUE(verify(optimized, compute_summaries(optimized)).empty())
      << "optimized module must still pass V6 coverage";

  for (int64_t scratch : {0, 1, -3, 42}) {
    expect_backends_agree(plain, "f", scratch, 2, "plain");
    expect_backends_agree(optimized, "f", scratch, 2, "optimized");
    // And across the optimizer axis, results (not lock counts) agree.
    const CompiledModule cp = compile(plain);
    const CompiledModule co = compile(optimized);
    EXPECT_EQ(run_one(plain, cp, Backend::kCompiled, "f", scratch, 2).result,
              run_one(optimized, co, Backend::kCompiled, "f", scratch, 2).result)
        << "seed=" << GetParam() << " scratch=" << scratch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlBackendDiff,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597));

// --- Directed programs: splits, calls, arrays -------------------------------

TEST(IlBackendDirected, SplitLoopAgreesAcrossBackends) {
  Module m;
  build_worker(m);
  insert_locks(m);
  ASSERT_TRUE(verify(m).empty());
  for (int64_t iters : {0, 1, 7}) {
    expect_backends_agree(m, "worker", iters, 2, "worker");
  }
  const CompiledModule cm = compile(m);
  EXPECT_EQ(run_one(m, cm, Backend::kCompiled, "worker", 7, 2).result, 3 + 7);
}

TEST(IlBackendDirected, ArrayProgramAgreesAcrossBackends) {
  Module m;
  build_array_fn(m);
  insert_locks(m);
  ASSERT_TRUE(verify(m).empty());
  Module opt;
  build_array_fn(opt);
  insert_locks(opt);
  optimize(opt);
  for (int64_t n : {0, 1, 5, 16}) {
    expect_backends_agree(m, "arr", n, 2, "arr");
    expect_backends_agree(opt, "arr", n, 2, "arr-opt");
  }
  const CompiledModule cm = compile(m);
  EXPECT_EQ(run_one(m, cm, Backend::kCompiled, "arr", 5, 2).result, 25);
}

TEST(IlBackendDirected, CallsAgreeAcrossBackends) {
  Module m;
  build_interproc(m);
  insert_locks(m);
  ASSERT_TRUE(verify(m).empty());
  expect_backends_agree(m, "main", 0, 1, "interproc-plain");
  Module opt;
  build_interproc(opt);
  insert_locks(opt);
  optimize(opt);
  expect_backends_agree(opt, "main", 0, 1, "interproc-opt");
  const CompiledModule cm = compile(m);
  const CompiledModule co = compile(opt);
  EXPECT_EQ(run_one(m, cm, Backend::kCompiled, "main", 0, 1).result,
            run_one(opt, co, Backend::kCompiled, "main", 0, 1).result);
}

// --- Interprocedural elimination unit tests ---------------------------------

TEST(IlSummaries, CalleeExitLocksComputed) {
  Module m;
  build_interproc(m);
  insert_locks(m);
  const Summaries sums = compute_summaries(m);
  ASSERT_TRUE(sums.count("reader"));
  const LockSummary& s = sums.at("reader");
  EXPECT_FALSE(s.top);
  EXPECT_FALSE(s.maySplit);
  EXPECT_FALSE(s.returnsNew);
  EXPECT_FALSE(s.exitLocks.empty() && s.exitMapped.empty())
      << "reader must-locks f0/f1 of its parameter at exit";
  const std::string dump = dump_summaries(m, sums);
  EXPECT_NE(dump.find("reader"), std::string::npos);
}

TEST(IlSummaries, RecursionIsTopAndSplitIsMaySplit) {
  Module m;
  {
    FnBuilder fb(m, "rec", 1, 3);
    fb.call(1, "rec", {0});
    fb.ret(1);
  }
  {
    FnBuilder fb(m, "splitter", 1, 3);
    fb.can_split();
    fb.getf(1, 0, 0, obj_class());
    fb.split();
    fb.ret(1);
  }
  insert_locks(m);
  const Summaries sums = compute_summaries(m);
  EXPECT_TRUE(sums.at("rec").top) << "self-recursion must be conservative top";
  EXPECT_TRUE(sums.at("splitter").maySplit);
  EXPECT_FALSE(sums.at("splitter").top)
      << "maySplit is a separate dimension from top";
}

TEST(IlSummaries, ReturnsNewTracked) {
  Module m;
  FnBuilder fb(m, "maker", 0, 2);
  fb.new_obj(0, obj_class());
  fb.ret(0);
  insert_locks(m);
  EXPECT_TRUE(compute_summaries(m).at("maker").returnsNew);
}

TEST(IlInterproc, CrossCallLocksEliminated) {
  Module intra, inter;
  build_interproc(intra);
  build_interproc(inter);
  insert_locks(intra);
  insert_locks(inter);

  const OptStats si = optimize(intra, /*interproc=*/false);
  const OptStats sx = optimize(inter, /*interproc=*/true);
  EXPECT_EQ(si.crossCallEliminated, 0);
  EXPECT_GE(sx.crossCallEliminated, 2)
      << "main's re-locks of f0 and f1 are covered by reader's summary";
  EXPECT_EQ(count_ops(*inter.get("main"), Op::kLock), 0);
  EXPECT_GT(count_ops(*intra.get("main"), Op::kLock), 0)
      << "without summaries the call must clear the state";
  ASSERT_TRUE(verify(inter, compute_summaries(inter)).empty())
      << "V6 must accept exactly what O1+summaries eliminated";

  // The static elimination is visible dynamically: strictly fewer lock
  // operations, identical result, on both backends.
  const CompiledModule ci = compile(intra);
  const CompiledModule cx = compile(inter);
  for (Backend be : {Backend::kInterp, Backend::kCompiled}) {
    const Outcome a = run_one(intra, ci, be, "main", 0, 1);
    const Outcome b = run_one(inter, cx, be, "main", 0, 1);
    EXPECT_EQ(a.result, b.result);
    EXPECT_LT(b.delta.lock_ops(), a.delta.lock_ops())
        << "interprocedural elimination must drop dynamic lock ops";
  }
}

TEST(IlInterproc, OptimizeReachesFixpoint) {
  Module m;
  build_interproc(m);
  insert_locks(m);
  const OptStats s1 = optimize(m);
  EXPECT_GT(s1.locksEliminated, 0);
  EXPECT_GE(s1.rounds, 2) << "a changing round must be followed by the quiescent one";
  const OptStats s2 = optimize(m);
  EXPECT_EQ(s2.locksEliminated, 0) << "optimize must be idempotent at the fixpoint";
  EXPECT_EQ(s2.locksHoisted, 0);
  EXPECT_EQ(s2.rounds, 1);
}

// --- Verifier negative fixtures (V5 call checks, V6 coverage) ---------------

TEST(IlVerifyNegative, UnknownCalleeAndArity) {
  Module m;
  {
    FnBuilder fb(m, "callee", 1, 3);
    fb.ret(0);
  }
  {
    FnBuilder fb(m, "bad", 1, 4);
    fb.call(1, "nope", {0});       // unknown callee
    fb.call(2, "callee", {});      // arity mismatch
    fb.call(3, "callee", {7});     // arg local out of range
    fb.ret(1);
  }
  const auto diags = verify(m);
  EXPECT_TRUE(has_diag(diags, "unknown function nope (V5)"));
  EXPECT_TRUE(has_diag(diags, "arity mismatch calling callee (V5)"));
  EXPECT_TRUE(has_diag(diags, "l7 out of range"));
}

TEST(IlVerifyNegative, UncoveredNoLockReadRejected) {
  Module m;
  FnBuilder fb(m, "r", 1, 3);
  fb.getf(1, 0, 0, obj_class());
  fb.ret(1);
  insert_locks(m);
  ASSERT_TRUE(verify(m, compute_summaries(m)).empty());  // positive control
  erase_first_lock(*m.get("r"), LockMode::kRead);
  const auto diags = verify(m, compute_summaries(m));
  EXPECT_TRUE(has_diag(diags, "no-lock field read"));
  EXPECT_TRUE(has_diag(diags, "(V6)"));
}

TEST(IlVerifyNegative, CalleeReadSummaryDoesNotCoverWrite) {
  // reader read-locks f0 of its parameter; wmain then writes f0 with
  // its own write lock stripped. The only remaining coverage is the
  // READ fact imported from the callee summary — a lock-mode mismatch
  // the verifier must reject (the write's undo logging rides on the
  // eliminated lock).
  Module m;
  {
    FnBuilder fb(m, "reader2", 1, 4);
    fb.getf(1, 0, 0, obj_class());
    fb.ret(1);
  }
  {
    FnBuilder fb(m, "wmain", 1, 4);
    fb.call(1, "reader2", {0});
    fb.setf(0, 0, 1, obj_class());
    fb.ret(1);
  }
  insert_locks(m);
  ASSERT_TRUE(verify(m, compute_summaries(m)).empty());  // positive control
  erase_first_lock(*m.get("wmain"), LockMode::kWrite);
  const auto diags = verify(m, compute_summaries(m));
  EXPECT_TRUE(has_diag(diags, "no-lock field write"));
  EXPECT_TRUE(has_diag(diags, "(V6)"));
}

// --- Oracle: concurrent compiled execution is serializable ------------------

void oracle_clean_run(Backend be) {
  Module m;
  build_worker(m);
  insert_locks(m);
  ASSERT_TRUE(verify(m).empty());
  const CompiledModule cm = compile(m);
  constexpr int kThreads = 2;
  constexpr int64_t kIters = 24;

  obs::set_enabled(true);
  obs::drain();
  const uint64_t droppedBefore = obs::dropped();
  obs::set_full_trace(true);

  runtime::ManagedObject* obj = nullptr;
  run_sbd([&] {
    obj = runtime::Heap::instance().alloc_object(obj_class());
    runtime::init_write(obj, 0, 0);
    runtime::init_write(obj, 1, 0);
    runtime::init_write(obj, 2, 0);
  });

  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        const std::vector<int64_t> args{reinterpret_cast<int64_t>(obj), kIters};
        if (be == Backend::kCompiled)
          (void)execute(cm, "worker", args);
        else
          (void)execute(m, "worker", args);
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }

  int64_t final = 0;
  run_sbd([&] {
    // worker with 0 iterations just reads f0 back.
    final = execute(m, "worker", {reinterpret_cast<int64_t>(obj), 0});
  });
  EXPECT_EQ(final, kThreads * kIters)
      << "each increment is atomic between splits: no lost updates";

  obs::set_full_trace(false);
  const auto events = obs::drain();
  obs::set_enabled(false);
  const uint64_t dropped = obs::dropped() - droppedBefore;
  EXPECT_EQ(dropped, 0u) << "ring overflow would blind the oracle";

  const std::vector<oracle::Rec> recs = oracle::from_obs(events);
  const oracle::Report rep = oracle::check(recs, dropped);
  EXPECT_TRUE(rep.ok()) << oracle::summary_line(rep) << "\n"
                        << oracle::format_windows(recs, rep);
  EXPECT_GT(rep.commits, 0u) << "splits must carry commit-order events";
}

TEST(IlBackendOracle, InterpTraceIsOracleClean) { oracle_clean_run(Backend::kInterp); }

TEST(IlBackendOracle, CompiledTraceIsOracleClean) {
  oracle_clean_run(Backend::kCompiled);
}

}  // namespace
}  // namespace sbd::il
