// LockMap-aware redundant-lock elimination (O1 + the static class
// annotation): when the instruction's declared class has an immutable
// coarse LockMap, locks on *different* slots that share a lock word
// dedupe statically — growing the Table 7 elimination counts — but
// only READ locks may be eliminated through the map (a write lock also
// owns the undo logging for its slot).
#include <gtest/gtest.h>

#include "api/sbd.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "il/verify.h"
#include "runtime/lockplan.h"

namespace sbd::il {
namespace {

runtime::ClassInfo* object_cls() {
  static runtime::ClassInfo* ci = [] {
    auto* c = runtime::register_class(
        "ILMapObj", {SBD_SLOT("a"), SBD_SLOT("b"), SBD_SLOT("c")});
    // Pinned before any instance exists; in every fixed mode (this test
    // binary runs the default, field) pins make the map static for the
    // optimizer.
    EXPECT_TRUE(runtime::lockplan::set_class_map(c, runtime::LockMap::object_map()));
    return c;
  }();
  return ci;
}

runtime::ClassInfo* field_cls() {
  static runtime::ClassInfo* ci = runtime::register_class(
      "ILMapField", {SBD_SLOT("a"), SBD_SLOT("b")});
  return ci;
}

TEST(IlLockMap, ObjectMapDedupesReadLocksAcrossSlots) {
  Module m;
  FnBuilder fb(m, "rd", 1, 4);
  fb.getf(1, 0, 0, object_cls());
  fb.getf(2, 0, 1, object_cls());  // different slot, same lock word
  fb.bin(3, BinOp::kAdd, 1, 2);
  fb.ret(3);
  insert_locks(m);
  ASSERT_EQ(count_ops(*m.get("rd"), Op::kLock), 2);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*m.get("rd"), Op::kLock), 1);
  // The deduped code still reads correctly through the real STM.
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(object_cls());
    runtime::init_write(o, 0, 19);
    runtime::init_write(o, 1, 23);
    split();  // escape: accesses below go through the lock path
    EXPECT_EQ(execute(m, "rd", {reinterpret_cast<int64_t>(o)}), 42);
  });
}

TEST(IlLockMap, WriteLocksAreNeverMapEliminated) {
  Module m;
  FnBuilder fb(m, "wr", 1, 2);
  fb.cst(1, 7);
  fb.setf(0, 0, 1, object_cls());
  fb.setf(0, 1, 1, object_cls());  // shares the word, but keeps its lock:
                                   // the second write's undo entry comes
                                   // from its own acquire
  fb.ret();
  insert_locks(m);
  ASSERT_EQ(count_ops(*m.get("wr"), Op::kLock), 2);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 0);
  EXPECT_EQ(count_ops(*m.get("wr"), Op::kLock), 2);
}

TEST(IlLockMap, MappedWriteCoversALaterRead) {
  Module m;
  FnBuilder fb(m, "wr_rd", 1, 3);
  fb.cst(1, 5);
  fb.setf(0, 0, 1, object_cls());
  fb.getf(2, 0, 1, object_cls());  // read lock: covered by the held word
  fb.ret(2);
  insert_locks(m);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*m.get("wr_rd"), Op::kLock), 1);
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(object_cls());
    runtime::init_write(o, 0, 0);
    runtime::init_write(o, 1, 42);
    split();
    EXPECT_EQ(execute(m, "wr_rd", {reinterpret_cast<int64_t>(o)}), 42);
    EXPECT_EQ(static_cast<int64_t>(runtime::tx_read(o, 0)), 5);
  });
}

TEST(IlLockMap, NoAnnotationMeansNoCrossSlotDedupe) {
  Module m;
  FnBuilder fb(m, "rd", 1, 4);
  fb.getf(1, 0, 0);  // cls unknown: the optimizer cannot consult a map
  fb.getf(2, 0, 1);
  fb.bin(3, BinOp::kAdd, 1, 2);
  fb.ret(3);
  insert_locks(m);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 0);
  EXPECT_EQ(count_ops(*m.get("rd"), Op::kLock), 2);
}

TEST(IlLockMap, FieldMapKeepsPerSlotLocks) {
  Module m;
  FnBuilder fb(m, "rd", 1, 4);
  fb.getf(1, 0, 0, field_cls());
  fb.getf(2, 0, 1, field_cls());  // identity map: distinct words
  fb.getf(3, 0, 0, field_cls());  // same slot: plain O1 still fires
  fb.ret(3);
  insert_locks(m);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*m.get("rd"), Op::kLock), 2);
}

TEST(IlLockMap, ObjectMapDedupesElementReadLocks) {
  // Element locks have a dynamic index, so only an object map (every
  // index -> word 0) supports cross-element dedupe. Pin the i64 array
  // class coarse for this binary.
  auto* arr = runtime::array_class(runtime::ElemKind::kI64);
  ASSERT_TRUE(runtime::lockplan::set_class_map(arr, runtime::LockMap::object_map()));
  Module m;
  FnBuilder fb(m, "sum2", 3, 6);
  fb.gete(3, 0, 1, arr);
  fb.gete(4, 0, 2, arr);
  fb.bin(5, BinOp::kAdd, 3, 4);
  fb.ret(5);
  insert_locks(m);
  const auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*m.get("sum2"), Op::kLock), 1);
}

}  // namespace
}  // namespace sbd::il
