// Differential testing of the IL optimizer: randomly generated programs
// must compute identical results before and after every optimization
// pipeline, and optimized programs must never execute MORE lock
// operations.
#include <gtest/gtest.h>

#include "api/sbd.h"
#include "common/rng.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "il/verify.h"

namespace sbd::il {
namespace {

runtime::ClassInfo* obj_class() {
  static runtime::ClassInfo* ci = runtime::register_class(
      "DiffObj", {{"f0", false, false}, {"f1", false, false}, {"f2", false, false}});
  return ci;
}

// Generates a random function: params l0 = object, l1 = scratch int.
// Straight-line blocks with field reads/writes, arithmetic, and an
// occasional diamond branch. No calls/splits (those are covered by
// directed tests); the generator exercises the dataflow through joins.
void generate(Module& m, Rng& rng) {
  FnBuilder fb(m, "f", 2, 10);
  const int numOps = 6 + static_cast<int>(rng.below(14));
  for (int i = 0; i < numOps; i++) {
    const int dst = 2 + static_cast<int>(rng.below(7));
    switch (rng.below(6)) {
      case 0:
        fb.cst(dst, static_cast<int64_t>(rng.below(100)));
        break;
      case 1:
        fb.getf(dst, 0, static_cast<int>(rng.below(3)));
        break;
      case 2:
        fb.setf(0, static_cast<int>(rng.below(3)), dst);
        break;
      case 3:
        fb.bin(dst, BinOp::kAdd, 2 + static_cast<int>(rng.below(7)),
               2 + static_cast<int>(rng.below(7)));
        break;
      case 4:
        fb.bin(dst, BinOp::kXor, 1, 2 + static_cast<int>(rng.below(7)));
        break;
      case 5: {
        // Diamond: both arms access a field, merge continues.
        const int thenB = fb.block();
        const int elseB = fb.block();
        const int merge = fb.block();
        fb.cbr(1, thenB, elseB);
        fb.at(thenB);
        fb.getf(dst, 0, 0);
        fb.br(merge);
        fb.at(elseB);
        fb.setf(0, 1, 1);
        fb.br(merge);
        fb.at(merge);
        break;
      }
    }
  }
  // Deterministic observable result: fold the fields and a scratch reg.
  fb.getf(3, 0, 0);
  fb.getf(4, 0, 1);
  fb.getf(5, 0, 2);
  fb.bin(6, BinOp::kAdd, 3, 4);
  fb.bin(6, BinOp::kAdd, 6, 5);
  fb.ret(6);
}

int64_t run_program(Module& m, int64_t scratch) {
  int64_t result = 0;
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(obj_class());
    runtime::init_write(o, 0, 3);
    runtime::init_write(o, 1, 5);
    runtime::init_write(o, 2, 7);
    split();  // escape: accesses must lock
    result = execute(m, "f", {reinterpret_cast<int64_t>(o), scratch});
  });
  return result;
}

uint64_t count_dynamic_lock_ops(Module& m, int64_t scratch) {
  uint64_t ops = 0;
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(obj_class());
    split();
    auto& tc = core::tls_context();
    const auto before = tc.stats;
    (void)execute(m, "f", {reinterpret_cast<int64_t>(o), scratch});
    const auto after = tc.stats;
    ops = (after.acqRls - before.acqRls) + (after.checkOwned - before.checkOwned) +
          (after.checkNew - before.checkNew) + (after.lockInit - before.lockInit);
  });
  return ops;
}

class IlDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlDifferential, OptimizationPreservesSemantics) {
  Rng rngA(GetParam()), rngB(GetParam());
  Module plain, optimized;
  generate(plain, rngA);
  generate(optimized, rngB);
  insert_locks(plain);
  insert_locks(optimized);
  ASSERT_TRUE(verify(plain).empty());
  optimize(optimized);

  for (int64_t scratch : {0, 1, -3, 42}) {
    EXPECT_EQ(run_program(plain, scratch), run_program(optimized, scratch))
        << "seed=" << GetParam() << " scratch=" << scratch;
  }
  EXPECT_LE(count_dynamic_lock_ops(optimized, 1), count_dynamic_lock_ops(plain, 1))
      << "optimization must never add lock operations";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233,
                                           377, 610, 987, 1597));

}  // namespace
}  // namespace sbd::il
