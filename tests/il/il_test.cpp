// SBD-IL: builder, verifier, transformer, optimizer, interpreter.
#include <gtest/gtest.h>

#include "api/sbd.h"
#include "il/interp.h"
#include "il/opt.h"
#include "il/transform.h"
#include "il/verify.h"

namespace sbd::il {
namespace {

runtime::ClassInfo* point_class() {
  static runtime::ClassInfo* ci = runtime::register_class(
      "ILPoint", {SBD_SLOT("x"), SBD_SLOT("y"), SBD_SLOT_REF("link")});
  return ci;
}

// fn sum(a, b) = a + b
void build_sum(Module& m) {
  FnBuilder fb(m, "sum", 2, 3);
  fb.bin(2, BinOp::kAdd, 0, 1);
  fb.ret(2);
}

// fn touch(p): p.x = p.x + 1; return p.x   (raw accesses)
void build_touch(Module& m) {
  FnBuilder fb(m, "touch", 1, 4);
  fb.getf(1, 0, 0);
  fb.cst(2, 1);
  fb.bin(3, BinOp::kAdd, 1, 2);
  fb.setf(0, 0, 3);
  fb.getf(1, 0, 0);
  fb.ret(1);
}

TEST(IlVerify, AcceptsWellFormed) {
  Module m;
  build_sum(m);
  EXPECT_TRUE(verify(m).empty());
}

TEST(IlVerify, RejectsSplitWithoutCanSplit) {
  Module m;
  FnBuilder fb(m, "bad", 0, 1);
  fb.split();
  fb.ret();
  auto d = verify(m);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NE(d[0].find("V1"), std::string::npos);
}

TEST(IlVerify, RejectsCanSplitCallWithoutAllowSplit) {
  Module m;
  {
    FnBuilder fb(m, "callee", 0, 1);
    fb.can_split();
    fb.split();
    fb.ret();
  }
  {
    FnBuilder fb(m, "caller", 0, 1);
    fb.can_split();
    fb.call(-1, "callee", {});  // missing allowSplit
    fb.ret();
  }
  auto d = verify(m);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NE(d[0].find("V2"), std::string::npos);
}

TEST(IlVerify, AcceptsAllowSplitCall) {
  Module m;
  {
    FnBuilder fb(m, "callee", 0, 1);
    fb.can_split();
    fb.split();
    fb.ret();
  }
  {
    FnBuilder fb(m, "caller", 0, 1);
    fb.can_split();
    fb.call(-1, "callee", {}, /*allowSplit=*/true);
    fb.ret();
  }
  EXPECT_TRUE(verify(m).empty());
}

TEST(IlVerify, RejectsCanSplitConstructor) {
  Module m;
  FnBuilder fb(m, "init", 0, 1);
  fb.constructor();
  fb.can_split();
  fb.ret();
  auto d = verify(m);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NE(d[0].find("V4"), std::string::npos);
}

TEST(IlVerify, RejectsUnknownCallee) {
  Module m;
  FnBuilder fb(m, "f", 0, 1);
  fb.call(-1, "nope", {});
  fb.ret();
  EXPECT_FALSE(verify(m).empty());
}

TEST(IlVerify, RejectsOutOfRangeLocal) {
  Module m;
  FnBuilder fb(m, "f", 0, 2);
  fb.cst(5, 1);  // local 5 does not exist
  fb.ret();
  EXPECT_FALSE(verify(m).empty());
}

TEST(IlVerify, RejectsAllowSplitInNonCanSplit) {
  Module m;
  {
    FnBuilder fb(m, "callee", 0, 1);
    fb.can_split();
    fb.ret();
  }
  {
    FnBuilder fb(m, "caller", 0, 1);  // NOT canSplit
    fb.call(-1, "callee", {}, true);
    fb.ret();
  }
  auto d = verify(m);
  // V3 (allowSplit without canSplit) fires.
  bool v3 = false;
  for (auto& s : d) v3 |= s.find("V3") != std::string::npos;
  EXPECT_TRUE(v3);
}

TEST(IlTransform, InsertsLockBeforeEachAccess) {
  Module m;
  build_touch(m);
  Function* f = m.get("touch");
  EXPECT_EQ(count_ops(*f, Op::kLock), 0);
  insert_locks(*f);
  EXPECT_EQ(count_ops(*f, Op::kLock), 3);     // two gets + one set
  EXPECT_EQ(count_ops(*f, Op::kGetF), 0);     // all rewritten
  EXPECT_EQ(count_ops(*f, Op::kGetFNl), 2);
  EXPECT_EQ(count_ops(*f, Op::kSetFNl), 1);
}

TEST(IlInterp, ArithmeticAndCalls) {
  Module m;
  build_sum(m);
  run_sbd([&] { EXPECT_EQ(execute(m, "sum", {19, 23}), 42); });
}

TEST(IlInterp, FieldAccessTransactional) {
  Module m;
  build_touch(m);
  insert_locks(m);
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(point_class());
    runtime::init_write(o, 0, 7);
    split();  // escape
    const int64_t v = execute(m, "touch", {reinterpret_cast<int64_t>(o)});
    EXPECT_EQ(v, 8);
    EXPECT_EQ(static_cast<int64_t>(runtime::tx_read(o, 0)), 8);
  });
}

TEST(IlInterp, LoopOverArray) {
  // fn fill(arr, n): for i in 0..n: arr[i] = i*2; return arr[n-1]
  Module m;
  FnBuilder fb(m, "fill", 2, 8);
  const int arr = 0, n = 1, i = 2, two = 3, v = 4, cond = 5, one = 6;
  fb.cst(i, 0);
  fb.cst(two, 2);
  fb.cst(one, 1);
  const int head = fb.block();
  const int body = fb.block();
  const int done = fb.block();
  fb.br(head);
  fb.at(head);
  fb.bin(cond, BinOp::kLt, i, n);
  fb.cbr(cond, body, done);
  fb.at(body);
  fb.bin(v, BinOp::kMul, i, two);
  fb.sete(arr, i, v);
  fb.bin(i, BinOp::kAdd, i, one);
  fb.br(head);
  fb.at(done);
  fb.bin(v, BinOp::kSub, n, one);
  fb.gete(cond, arr, v);
  fb.ret(cond);
  insert_locks(m);
  ASSERT_TRUE(verify(m).empty());
  run_sbd([&] {
    auto* a = runtime::Heap::instance().alloc_array(runtime::ElemKind::kI64, 16);
    EXPECT_EQ(execute(m, "fill", {reinterpret_cast<int64_t>(a), 16}), 30);
  });
}

TEST(IlOpt, EliminatesRepeatLocks) {
  Module m;
  build_touch(m);
  insert_locks(m);
  Function* f = m.get("touch");
  ASSERT_EQ(count_ops(*f, Op::kLock), 3);
  auto stats = eliminate_redundant_locks(m);
  // First lock is R on p.x; the W lock is NOT covered by R (upgrade),
  // but the final R re-lock after the write IS covered by W.
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*f, Op::kLock), 2);
}

TEST(IlOpt, WriteLockCoversLaterReadAndWrite) {
  Module m;
  FnBuilder fb(m, "w", 1, 3);
  fb.cst(1, 5);
  fb.setf(0, 0, 1);  // write
  fb.getf(2, 0, 0);  // read  (covered)
  fb.setf(0, 0, 2);  // write (covered)
  fb.ret(2);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 2);
  EXPECT_EQ(count_ops(*m.get("w"), Op::kLock), 1);
}

TEST(IlOpt, SplitKillsFacts) {
  Module m;
  FnBuilder fb(m, "s", 1, 2);
  fb.can_split();
  fb.getf(1, 0, 0);
  fb.split();
  fb.getf(1, 0, 0);  // must NOT be eliminated: split released the lock
  fb.ret(1);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 0);
  EXPECT_EQ(count_ops(*m.get("s"), Op::kLock), 2);
}

TEST(IlOpt, CanSplitCallKillsFactsButPlainCallDoesNot) {
  Module m;
  {
    FnBuilder fb(m, "plain", 0, 1);
    fb.ret();
  }
  {
    FnBuilder fb(m, "splitter", 0, 1);
    fb.can_split();
    fb.split();
    fb.ret();
  }
  {
    FnBuilder fb(m, "caller", 1, 2);
    fb.can_split();
    fb.getf(1, 0, 0);
    fb.call(-1, "plain", {});
    fb.getf(1, 0, 0);  // survives the plain call -> eliminated
    fb.call(-1, "splitter", {}, true);
    fb.getf(1, 0, 0);  // killed by the canSplit call -> kept
    fb.ret(1);
  }
  insert_locks(m);
  // Only transform the caller's view: eliminate on the whole module.
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
  EXPECT_EQ(count_ops(*m.get("caller"), Op::kLock), 2);
}

TEST(IlOpt, NewInstanceLocksEliminated) {
  Module m;
  FnBuilder fb(m, "mk", 0, 3);
  fb.new_obj(0, point_class());
  fb.cst(1, 3);
  fb.setf(0, 0, 1);  // store to a NEW object: lock removable
  fb.getf(2, 0, 0);
  fb.ret(2);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 2);
  EXPECT_EQ(count_ops(*m.get("mk"), Op::kLock), 0);
}

TEST(IlOpt, BranchesIntersectFacts) {
  // Lock held on only one arm must not count after the merge.
  Module m;
  FnBuilder fb(m, "br", 2, 3);
  const int thenB = fb.block();
  const int elseB = fb.block();
  const int merge = fb.block();
  fb.at(0);
  fb.cbr(1, thenB, elseB);
  fb.at(thenB);
  fb.getf(2, 0, 0);  // lock only on this arm
  fb.br(merge);
  fb.at(elseB);
  fb.cst(2, 0);
  fb.br(merge);
  fb.at(merge);
  fb.getf(2, 0, 0);  // NOT redundant (else-arm has no lock)
  fb.ret(2);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 0);
}

TEST(IlOpt, BothArmsLockedMergeKeepsFact) {
  Module m;
  FnBuilder fb(m, "br2", 2, 3);
  const int thenB = fb.block();
  const int elseB = fb.block();
  const int merge = fb.block();
  fb.at(0);
  fb.cbr(1, thenB, elseB);
  fb.at(thenB);
  fb.getf(2, 0, 0);
  fb.br(merge);
  fb.at(elseB);
  fb.getf(2, 0, 0);
  fb.br(merge);
  fb.at(merge);
  fb.getf(2, 0, 0);  // redundant: locked on both arms
  fb.ret(2);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 1);
}

TEST(IlOpt, BaseReassignmentKillsFact) {
  Module m;
  FnBuilder fb(m, "re", 2, 3);
  fb.getf(2, 0, 0);
  fb.mov(0, 1);      // base reassigned
  fb.getf(2, 0, 0);  // different object: must keep the lock
  fb.ret(2);
  insert_locks(m);
  auto stats = eliminate_redundant_locks(m);
  EXPECT_EQ(stats.locksEliminated, 0);
}

TEST(IlOpt, HoistsLoopInvariantLock) {
  // for i in 0..n: s += p.x  -> the R lock on p.x hoists to the preheader.
  Module m;
  FnBuilder fb(m, "loop", 2, 8);
  const int p = 0, n = 1, i = 2, s = 3, one = 4, cond = 5, t = 6;
  fb.cst(i, 0);
  fb.cst(s, 0);
  fb.cst(one, 1);
  const int pre = fb.block();
  const int head = fb.block();
  const int body = fb.block();
  const int done = fb.block();
  fb.br(pre);
  fb.at(pre);
  fb.br(head);
  fb.at(head);
  fb.getf(t, p, 0);  // invariant access first in the header
  fb.bin(s, BinOp::kAdd, s, t);
  fb.bin(i, BinOp::kAdd, i, one);
  fb.bin(cond, BinOp::kLt, i, n);
  fb.cbr(cond, body, done);
  fb.at(body);
  fb.br(head);
  fb.at(done);
  fb.ret(s);
  insert_locks(m);
  Function* f = m.get("loop");
  const int before = count_ops(*f, Op::kLock);
  auto stats = hoist_loop_locks(m);
  EXPECT_EQ(stats.locksHoisted, 1);
  EXPECT_EQ(count_ops(*f, Op::kLock), before);  // moved, not removed
  // The preheader now holds the lock.
  EXPECT_EQ(f->blocks[1].instrs.size(), 1u);
  EXPECT_EQ(f->blocks[1].instrs[0].op, Op::kLock);
}

TEST(IlOpt, NoHoistWhenLoopSplits) {
  Module m;
  FnBuilder fb(m, "ls", 2, 8);
  fb.can_split();
  const int p = 0, n = 1, i = 2, one = 3, cond = 4, t = 5;
  fb.cst(i, 0);
  fb.cst(one, 1);
  const int pre = fb.block();
  const int head = fb.block();
  const int done = fb.block();
  fb.br(pre);
  fb.at(pre);
  fb.br(head);
  fb.at(head);
  fb.getf(t, p, 0);
  fb.split();
  fb.bin(i, BinOp::kAdd, i, one);
  fb.bin(cond, BinOp::kLt, i, n);
  fb.cbr(cond, head, done);
  fb.at(done);
  fb.ret(t);
  insert_locks(m);
  auto stats = hoist_loop_locks(m);
  EXPECT_EQ(stats.locksHoisted, 0);
}

TEST(IlOpt, InlineSmallCallee) {
  Module m;
  build_sum(m);
  {
    FnBuilder fb(m, "main", 0, 4);
    fb.cst(0, 20);
    fb.cst(1, 22);
    fb.call(2, "sum", {0, 1});
    fb.ret(2);
  }
  auto stats = inline_small(m);
  EXPECT_EQ(stats.callsInlined, 1);
  EXPECT_EQ(count_ops(*m.get("main"), Op::kCall), 0);
  run_sbd([&] { EXPECT_EQ(execute(m, "main", {}), 42); });
}

TEST(IlOpt, InlineWidensEliminationScope) {
  // Caller locks p.x, then calls a small helper that locks p.x again.
  // Without inlining the intraprocedural analysis cannot remove the
  // helper's lock; after inlining it can.
  Module m;
  {
    FnBuilder fb(m, "get_x", 1, 2);
    fb.getf(1, 0, 0);
    fb.ret(1);
  }
  {
    FnBuilder fb(m, "use", 1, 3);
    fb.getf(1, 0, 0);
    fb.call(2, "get_x", {0});
    fb.bin(1, BinOp::kAdd, 1, 2);
    fb.ret(1);
  }
  insert_locks(m);
  Module mNoInline;  // structurally identical copy for comparison
  {
    FnBuilder fb(mNoInline, "get_x", 1, 2);
    fb.getf(1, 0, 0);
    fb.ret(1);
  }
  {
    FnBuilder fb(mNoInline, "use", 1, 3);
    fb.getf(1, 0, 0);
    fb.call(2, "get_x", {0});
    fb.bin(1, BinOp::kAdd, 1, 2);
    fb.ret(1);
  }
  insert_locks(mNoInline);

  auto noInl = eliminate_redundant_locks(mNoInline);
  EXPECT_EQ(count_ops(*mNoInline.get("use"), Op::kLock), 1);  // callee lock remains

  inline_small(m);
  eliminate_redundant_locks(m);
  EXPECT_EQ(count_ops(*m.get("use"), Op::kLock), 1);  // only ONE lock total now
  EXPECT_EQ(count_ops(*m.get("use"), Op::kCall), 0);
  (void)noInl;
  // Semantics preserved.
  run_sbd([&] {
    auto* o = runtime::Heap::instance().alloc_object(point_class());
    runtime::init_write(o, 0, 21);
    split();
    EXPECT_EQ(execute(m, "use", {reinterpret_cast<int64_t>(o)}), 42);
  });
}

TEST(IlOpt, OptimizedProgramExecutesFewerLockOps) {
  // End-to-end ablation shape: same program, fewer dynamic lock
  // operations after optimize(), identical result.
  auto build = [](Module& m) {
    FnBuilder fb(m, "hot", 2, 10);
    const int p = 0, n = 1, i = 2, one = 3, cond = 4, t = 5, s = 6;
    fb.cst(i, 0);
    fb.cst(one, 1);
    fb.cst(s, 0);
    const int head = fb.block();
    const int done = fb.block();
    fb.br(head);
    fb.at(head);
    fb.getf(t, p, 0);
    fb.bin(s, BinOp::kAdd, s, t);
    fb.setf(p, 1, s);
    fb.bin(i, BinOp::kAdd, i, one);
    fb.bin(cond, BinOp::kLt, i, n);
    fb.cbr(cond, head, done);
    fb.at(done);
    fb.ret(s);
    insert_locks(m);
  };
  Module plain, optimized;
  build(plain);
  build(optimized);
  optimize(optimized);

  auto run_count = [&](Module& m) {
    uint64_t ops = 0;
    int64_t result = 0;
    run_sbd([&] {
      auto* o = runtime::Heap::instance().alloc_object(point_class());
      runtime::init_write(o, 0, 3);
      split();
      auto& tc = core::tls_context();
      const auto before = tc.stats;
      result = execute(m, "hot", {reinterpret_cast<int64_t>(o), 100});
      const auto after = tc.stats;
      ops = (after.checkOwned - before.checkOwned) + (after.acqRls - before.acqRls) +
            (after.checkNew - before.checkNew);
    });
    return std::pair<uint64_t, int64_t>(ops, result);
  };
  auto [plainOps, plainResult] = run_count(plain);
  auto [optOps, optResult] = run_count(optimized);
  EXPECT_EQ(plainResult, optResult);
  EXPECT_LT(optOps, plainOps / 10) << "optimizer should remove most per-iteration checks";
}

}  // namespace
}  // namespace sbd::il
