// Liveness watchdog (core/watchdog.h): detects transactions blocked
// beyond a threshold, records them in the debug log, and — with the
// fallback enabled — breaks the stall by aborting the waiting victim.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "api/sbd.h"
#include "core/debug.h"
#include "core/watchdog.h"

namespace sbd {
namespace {

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(WatchdogCell, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

struct WatchdogGuard {
  explicit WatchdogGuard(const core::Watchdog::Options& o) { core::Watchdog::start(o); }
  ~WatchdogGuard() { core::Watchdog::stop(); }
};

// One writer grabs the lock and sits on it in-section; one reader
// blocks on it past the stall threshold.
void run_stall(uint64_t holdMillis) {
  runtime::GlobalRoot<Cell> cell;
  run_sbd([&] {
    Cell c = Cell::alloc();
    c.init_v(0);
    cell.set(c);
  });
  std::atomic<bool> locked{false};
  {
    SbdThread holder([&] {
      Cell c = cell.get();
      c.set_v(1);  // write lock held until the section ends
      locked = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(holdMillis));
      split();
    });
    SbdThread waiter([&] {
      while (!locked) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Cell c = cell.get();
      c.set_v(c.v() + 1);
      split();
    });
    holder.start();
    waiter.start();
    holder.join();
    waiter.join();
  }
  run_sbd([&] { EXPECT_EQ(cell.get().v(), 2); });
}

TEST(Watchdog, DetectsLockWaitStall) {
  core::Watchdog::Options o;
  o.stallThresholdNanos = 50'000'000;   // 50 ms
  o.pollIntervalNanos = 10'000'000;     // 10 ms
  o.abortVictimAfterNanos = 0;          // detection only
  o.logToStderr = false;
  WatchdogGuard wd(o);
  const uint64_t before = core::Watchdog::stalls_detected();
  core::DebugLog::drain();  // discard events from earlier tests
  core::DebugLog::enable(true);
  run_stall(/*holdMillis=*/400);
  core::DebugLog::enable(false);
  EXPECT_GT(core::Watchdog::stalls_detected(), before)
      << "a 400 ms lock hold must trip a 50 ms stall threshold";
  const auto events = core::DebugLog::drain();
  bool sawStall = false;
  for (const auto& e : events)
    if (e.kind == core::DebugEventKind::kWatchdogStall) sawStall = true;
  EXPECT_TRUE(sawStall) << "stalls must be recorded in the debug log";
  EXPECT_NE(core::DebugLog::summarize(events).find("stalls"), std::string::npos)
      << "stalls must surface in the debug-log summary";
}

TEST(Watchdog, AbortVictimFallbackBreaksTheWaitAndWorkCompletes) {
  core::Watchdog::Options o;
  o.stallThresholdNanos = 40'000'000;   // 40 ms
  o.pollIntervalNanos = 10'000'000;     // 10 ms
  o.abortVictimAfterNanos = 120'000'000;  // 120 ms: then abort the waiter
  o.logToStderr = false;
  WatchdogGuard wd(o);
  const uint64_t before = core::Watchdog::victims_aborted();
  run_stall(/*holdMillis=*/600);
  EXPECT_GT(core::Watchdog::victims_aborted(), before)
      << "the waiter must be aborted by the timeout fallback";
  // run_stall already asserted the final value: the aborted waiter
  // retried and its update was not lost.
}

TEST(Watchdog, StartStopIdempotent) {
  core::Watchdog::Options o;
  o.logToStderr = false;
  EXPECT_FALSE(core::Watchdog::running());
  core::Watchdog::start(o);
  core::Watchdog::start(o);  // no-op
  EXPECT_TRUE(core::Watchdog::running());
  core::Watchdog::stop();
  core::Watchdog::stop();  // no-op
  EXPECT_FALSE(core::Watchdog::running());
}

}  // namespace
}  // namespace sbd
