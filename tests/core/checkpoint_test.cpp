// Tests for the stack checkpoint engine — the abort/retry substrate.
//
// Contract: set_anchor_at() covers frames *deeper* than the pad owner;
// locals of the very frame that sets the anchor are not guaranteed to
// be restored. All scenarios therefore run in a callee frame via
// run_below_anchor().
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

namespace sbd::core {
namespace {

__attribute__((noinline)) void run_below_anchor(CheckpointEngine& e,
                                                const std::function<void()>& fn) {
  volatile char pad[1024];
  pad[0] = 0;
  pad[1023] = 0;
  e.set_anchor_at(const_cast<char*>(&pad[512]));
  fn();
  e.clear_anchor();
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointEngine engine;
  Checkpoint cp;
};

TEST_F(CheckpointTest, TakeReturnsTaken) {
  run_below_anchor(engine, [&] {
    EXPECT_EQ(engine.take(cp), CheckpointResult::kTaken);
    EXPECT_TRUE(cp.valid());
    EXPECT_GT(cp.saved_bytes(), 0u);
  });
}

TEST_F(CheckpointTest, RestoreReexecutesFromCheckpoint) {
  static int globalPasses;  // survives restores (not on the stack)
  globalPasses = 0;
  run_below_anchor(engine, [&] {
    auto r = engine.take(cp);
    globalPasses++;
    if (r == CheckpointResult::kTaken) {
      EXPECT_EQ(globalPasses, 1);
      engine.restore(cp);  // never returns; jumps back to take()
      FAIL() << "restore returned";
    }
    EXPECT_EQ(r, CheckpointResult::kRestored);
    EXPECT_EQ(globalPasses, 2);
  });
}

TEST_F(CheckpointTest, StackLocalsAreRestored) {
  static int arrivals;
  arrivals = 0;
  run_below_anchor(engine, [&] {
    volatile int counter = 5;  // stack local: must be rolled back
    auto r = engine.take(cp);
    arrivals++;
    if (r == CheckpointResult::kTaken) {
      EXPECT_EQ(counter, 5);
      counter = 99;  // mutate after the checkpoint
      engine.restore(cp);
      FAIL();
    }
    EXPECT_EQ(arrivals, 2);
    EXPECT_EQ(counter, 5);
  });
}

TEST_F(CheckpointTest, ArrayOnStackIsRestored) {
  static int arrivals;
  arrivals = 0;
  run_below_anchor(engine, [&] {
    char buf[256];
    std::memset(buf, 'a', sizeof(buf));
    auto r = engine.take(cp);
    arrivals++;
    if (r == CheckpointResult::kTaken) {
      std::memset(buf, 'z', sizeof(buf));
      engine.restore(cp);
      FAIL();
    }
    for (char c : buf) ASSERT_EQ(c, 'a');
    EXPECT_EQ(arrivals, 2);
  });
}

// Restore must work from a deeper frame than the one that took the
// checkpoint (the common case: abort happens inside a callee).
void deep_restore(CheckpointEngine& engine, Checkpoint& cp, int depth) {
  volatile char pad[128];
  pad[0] = static_cast<char>(depth);
  if (depth > 0) {
    deep_restore(engine, cp, depth - 1);
    return;
  }
  engine.restore(cp);
}

TEST_F(CheckpointTest, RestoreFromDeepCallee) {
  static int arrivals;
  arrivals = 0;
  run_below_anchor(engine, [&] {
    auto r = engine.take(cp);
    arrivals++;
    if (r == CheckpointResult::kTaken) {
      deep_restore(engine, cp, 16);
      FAIL();
    }
    EXPECT_EQ(arrivals, 2);
  });
}

// Restore must also work when the aborting code runs in a *shallower*
// frame than the checkpoint was taken in (split deep in a callee that
// returned before the abort) — this is why the restore copy-back runs
// on a trampoline stack.
CheckpointResult take_in_callee(CheckpointEngine& engine, Checkpoint& cp, int depth) {
  volatile char pad[96];
  pad[1] = static_cast<char>(depth);
  if (depth > 0) return take_in_callee(engine, cp, depth - 1);
  return engine.take(cp);
}

TEST_F(CheckpointTest, RestoreFromShallowerFrame) {
  static int arrivals;
  arrivals = 0;
  run_below_anchor(engine, [&] {
    auto r = take_in_callee(engine, cp, 12);
    arrivals++;
    if (r == CheckpointResult::kTaken) {
      engine.restore(cp);  // we are shallower than the saved frames now
      FAIL();
    }
    EXPECT_EQ(arrivals, 2);
  });
}

TEST_F(CheckpointTest, RepeatedRestores) {
  static int arrivals;
  arrivals = 0;
  run_below_anchor(engine, [&] {
    engine.take(cp);
    arrivals++;
    if (arrivals < 5) {
      engine.restore(cp);
      FAIL();
    }
    EXPECT_EQ(arrivals, 5);
  });
}

TEST_F(CheckpointTest, RetakeReplacesCheckpoint) {
  static int phase;
  phase = 0;
  run_below_anchor(engine, [&] {
    auto r1 = engine.take(cp);
    if (phase == 0 && r1 == CheckpointResult::kTaken) {
      phase = 1;
      // Take a second checkpoint into the same object (split behavior).
      auto r2 = engine.take(cp);
      if (r2 == CheckpointResult::kTaken) {
        phase = 2;
        engine.restore(cp);
        FAIL();
      }
      // Restored to the SECOND checkpoint, not the first.
      EXPECT_EQ(r2, CheckpointResult::kRestored);
      EXPECT_EQ(phase, 2);
      return;
    }
    FAIL() << "restored to the stale first checkpoint";
  });
}

TEST_F(CheckpointTest, SavedBytesGrowWithDepth) {
  static size_t shallowBytes, deepBytes;
  run_below_anchor(engine, [&] {
    Checkpoint c1;
    engine.take(c1);
    shallowBytes = c1.saved_bytes();
  });
  run_below_anchor(engine, [&] {
    Checkpoint c2;
    (void)take_in_callee(engine, c2, 10);
    deepBytes = c2.saved_bytes();
  });
  EXPECT_GT(deepBytes, shallowBytes);
}

}  // namespace
}  // namespace sbd::core
