// Parking-lot stress: 128-thread over-subscription of the txn-id pool
// (2.3x the 56-id capacity) asserting the wake-one discipline holds — a
// thundering herd would show as O(waiters) wakes per release — plus a
// multi-thread reader/writer churn on ONE lock word driving publish /
// try_grant_self / park / unpark_word exactly the way slow_acquire does,
// checking mutual exclusion and that the word drains to zero.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/fwd.h"
#include "core/ids.h"
#include "core/lockword.h"
#include "core/queue.h"
#include "core/transaction.h"

namespace sbd::core {
namespace {

TEST(ParkingStress, IdOversubscription128ThreadsWakeOneDiscipline) {
  constexpr int kThreads = 128;
  constexpr int kItersPerThread = 20;
  TxnIdPool pool;
  ASSERT_EQ(pool.available(), kMaxTxns);

  const uint64_t wakes0 = ParkingLot::counters().idWakes;
  std::atomic<int> concurrent{0};
  std::atomic<int> maxConcurrent{0};
  std::atomic<bool> bad{false};
  std::atomic<uint64_t> held[kMaxTxns] = {};

  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; i++) {
        const int id = pool.acquire();
        if (id < 0 || id >= kMaxTxns) {
          bad.store(true);
          return;
        }
        // Exclusive handout: the id must not be live anywhere else.
        if (held[id].fetch_add(1, std::memory_order_acq_rel) != 0) bad.store(true);
        const int c = concurrent.fetch_add(1, std::memory_order_acq_rel) + 1;
        int mx = maxConcurrent.load(std::memory_order_relaxed);
        while (c > mx && !maxConcurrent.compare_exchange_weak(mx, c)) {
        }
        std::this_thread::yield();
        concurrent.fetch_sub(1, std::memory_order_acq_rel);
        held[id].fetch_sub(1, std::memory_order_acq_rel);
        pool.release(id);
      }
    });
  }
  for (auto& t : ts) t.join();

  EXPECT_FALSE(bad.load()) << "duplicate or out-of-range id handed out";
  EXPECT_LE(maxConcurrent.load(), kMaxTxns);
  EXPECT_EQ(pool.available(), kMaxTxns) << "every id returned";
  EXPECT_EQ(pool.waiters(), 0);

  // No thundering herd: a notify_all design wakes O(waiters) threads per
  // release (~72 here), i.e. hundreds of thousands of wakes for this
  // run. Wake-one spends at most one wake per release plus one baton
  // pass per acquire_for exit, so <= 2*acquires + threads total.
  const uint64_t wakes = ParkingLot::counters().idWakes - wakes0;
  const uint64_t acquires = uint64_t{kThreads} * kItersPerThread;
  EXPECT_LE(wakes, 2 * acquires + kThreads)
      << "wake count implies more than one wake per grant";
}

// One hot word, readers and writers mixing publish/probe/park/handoff —
// the same protocol slow_acquire runs, minus the STM around it. Checks
// writer exclusivity, reader sharing, and a fully drained word at the
// end (has-waiters bit included: a stuck bit would slow-path every
// later acquire forever).
TEST(ParkingStress, ContendedWordChurnMaintainsExclusionAndDrains) {
  constexpr int kThreads = 12;
  constexpr int kItersPerThread = 120;
  alignas(8) static LockWord word = 0;
  word = 0;
  auto& lot = ParkingLot::instance();
  auto* aw = reinterpret_cast<std::atomic<LockWord>*>(&word);

  std::atomic<int> readersIn{0};
  std::atomic<int> writersIn{0};
  std::atomic<bool> bad{false};

  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&, t] {
      ThreadContext tc;
      const bool writer = (t % 3) == 0;  // 1/3 writers
      const LockWord mask = txn_mask(t);
      for (int i = 0; i < kItersPerThread; i++) {
        // Acquire: fast CAS, else the full publish -> bit -> probe ->
        // park protocol.
        bool held = false;
        LockWord w = aw->load(std::memory_order_acquire);
        if (!writer && read_grabbable(w)) {
          held = aw->compare_exchange_strong(w, with_member(w, mask),
                                             std::memory_order_acq_rel);
        } else if (writer && is_free(w) && write_grabbable(w, mask)) {
          held = aw->compare_exchange_strong(w, with_writer(with_member(w, mask)),
                                             std::memory_order_acq_rel);
        }
        if (!held) {
          WaitNode node;
          node.word = &word;
          node.txnId = t;
          node.mask = mask;
          node.wantWrite = writer;
          lot.publish(node);
          w = aw->load(std::memory_order_acquire);
          while (!has_waiters(w)) {
            if (aw->compare_exchange_weak(w, with_waiters(w), std::memory_order_acq_rel))
              break;
          }
          for (;;) {
            if (lot.try_grant_self(tc, node).granted) break;
            lot.park(node, 1'000'000);
          }
        }
        // Critical section: writers alone, readers share.
        if (writer) {
          if (writersIn.fetch_add(1, std::memory_order_acq_rel) != 0) bad.store(true);
          if (readersIn.load(std::memory_order_acquire) != 0) bad.store(true);
          std::this_thread::yield();
          writersIn.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          readersIn.fetch_add(1, std::memory_order_acq_rel);
          if (writersIn.load(std::memory_order_acquire) != 0) bad.store(true);
          std::this_thread::yield();
          readersIn.fetch_sub(1, std::memory_order_acq_rel);
        }
        // Release, mirroring release_all's per-word CAS + wake.
        w = aw->load(std::memory_order_acquire);
        LockWord target;
        do {
          target = without_member(w, mask);
          if (sole_member(w, mask)) target = without_writer(target);
        } while (!aw->compare_exchange_weak(w, target, std::memory_order_acq_rel));
        if (has_waiters(target)) lot.unpark_word(tc, &word);
      }
    });
  }
  for (auto& t : ts) t.join();

  EXPECT_FALSE(bad.load()) << "mutual exclusion violated";
  EXPECT_EQ(word, 0u) << "word must drain completely (waiters bit included)";
}

}  // namespace
}  // namespace sbd::core
