// sbd::obs tracing + metrics layer: bounded ring overflow accounting,
// cross-thread drain ordering, symbolic lock identity that stays stable
// under lock-pool address recycling, real victim ids on deadlock
// events, the hot-lock contention table, and the metrics snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "api/sbd.h"
#include "core/obs.h"
#include "core/stats.h"
#include "runtime/class_info.h"
#include "runtime/heap.h"
#include "runtime/lockpool.h"
#include "runtime/object.h"
#include "runtime/ref.h"

namespace sbd {
namespace {

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(ObsCell, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(ObsRing, OverflowDropsAndCountsInsteadOfBlocking) {
  obs::set_enabled(true);
  obs::drain();
  const uint64_t d0 = obs::dropped();
  // Far more events than one ring holds; the producer must never block,
  // it drops the excess and counts every drop.
  const uint64_t n = 3 * 4096 + 17;
  for (uint64_t i = 0; i < n; i++)
    obs::record(obs::EventKind::kAborted, static_cast<int>(i), -1, nullptr,
                nullptr, obs::kNoIndex, false);
  const uint64_t pending = obs::approx_size();
  EXPECT_GT(pending, 0u);
  EXPECT_LT(pending, n);
  EXPECT_EQ(obs::dropped() - d0, n - pending) << "every overflow must be counted";
  obs::drain();
  obs::set_enabled(false);
}

TEST(ObsRing, DrainMergesThreadsByTimestampAndSurvivesThreadExit) {
  obs::set_enabled(true);
  obs::drain();
  constexpr int kPerThread = 100;
  std::thread a([] {
    for (int i = 0; i < kPerThread; i++)
      obs::record(obs::EventKind::kAborted, 1, -1, nullptr, nullptr,
                  obs::kNoIndex, false);
  });
  std::thread b([] {
    for (int i = 0; i < kPerThread; i++)
      obs::record(obs::EventKind::kAborted, 2, -1, nullptr, nullptr,
                  obs::kNoIndex, false);
  });
  a.join();
  b.join();
  // Both producer threads are gone; their retired rings must still
  // drain, merged oldest-first across threads.
  const auto events = obs::drain();
  obs::set_enabled(false);
  int fromA = 0, fromB = 0;
  for (const auto& e : events) {
    fromA += e.txnId == 1;
    fromB += e.txnId == 2;
  }
  EXPECT_EQ(fromA, kPerThread);
  EXPECT_EQ(fromB, kPerThread);
  for (size_t i = 1; i < events.size(); i++)
    ASSERT_LE(events[i - 1].timestampNanos, events[i].timestampNanos)
        << "drain must merge by timestamp at index " << i;
}

TEST(ObsRing, LosslessModeBlocksUntilDrained) {
  obs::set_enabled(true);
  obs::drain();
  const uint64_t d0 = obs::dropped();
  obs::set_lossless(true);
  // Several rings' worth of events from one producer: without lossless
  // mode most would be dropped (see OverflowDropsAndCounts above). With
  // it the producer blocks until the drainer makes room — zero drops.
  const uint64_t n = 3 * 4096 + 17;
  std::atomic<uint64_t> produced{0};
  std::thread producer([&] {
    for (uint64_t i = 0; i < n; i++) {
      obs::record(obs::EventKind::kAborted, 7, -1, nullptr, nullptr,
                  obs::kNoIndex, false);
      produced.fetch_add(1, std::memory_order_release);
    }
  });
  uint64_t mine = 0;
  auto drainCount = [&] {
    for (const auto& e : obs::drain())
      mine += e.kind == obs::EventKind::kAborted && e.txnId == 7;
  };
  while (produced.load(std::memory_order_acquire) < n) {
    drainCount();
    std::this_thread::yield();
  }
  producer.join();
  drainCount();
  obs::set_lossless(false);
  obs::set_enabled(false);
  EXPECT_EQ(obs::dropped() - d0, 0u) << "lossless mode must not drop";
  EXPECT_EQ(mine, n) << "every recorded event must surface in the drain";
}

TEST(ObsRing, ThreadExitRetiresRingWithMarker) {
  obs::set_enabled(true);
  obs::drain();
  std::thread t([] {
    obs::record(obs::EventKind::kAborted, 31, -1, nullptr, nullptr,
                obs::kNoIndex, false);
  });
  t.join();
  const auto events = obs::drain();
  obs::set_enabled(false);
  // The retired ring must carry the thread's payload AND end with the
  // kThreadExit marker, so the oracle can tell "stream ended" from
  // "events missing".
  size_t payloadAt = events.size(), exitAt = events.size();
  for (size_t i = 0; i < events.size(); i++) {
    if (events[i].txnId == 31 && events[i].kind == obs::EventKind::kAborted)
      payloadAt = i;
    if (events[i].kind == obs::EventKind::kThreadExit) exitAt = i;
  }
  ASSERT_LT(payloadAt, events.size());
  ASSERT_LT(exitAt, events.size()) << "ring retirement must record kThreadExit";
  EXPECT_LT(payloadAt, exitAt) << "the exit marker ends the thread's stream";
  EXPECT_LT(events[payloadAt].ordinal, events[exitAt].ordinal)
      << "ordinals must order a thread's own events";
}

TEST(ObsSymbols, AttributionStableUnderLockPoolRecycling) {
  static runtime::ClassInfo* clsA =
      runtime::register_class("ObsRecycleA", {SBD_SLOT("x")}, {});
  static runtime::ClassInfo* clsB =
      runtime::register_class("ObsRecycleB", {SBD_SLOT("y")}, {});
  auto& pool = runtime::LockPool::instance();

  obs::set_enabled(true);
  obs::drain();
  // Same size class: release hands the identical array back, so both
  // events carry the SAME raw word address for DIFFERENT locks.
  core::LockWord* w1 = pool.acquire(1);
  obs::record(obs::EventKind::kBlocked, 1, -1, w1, clsA, 0, true);
  pool.release(w1, 1);
  core::LockWord* w2 = pool.acquire(1);
  obs::record(obs::EventKind::kBlocked, 2, -1, w2, clsB, 0, false);
  pool.release(w2, 1);
  ASSERT_EQ(w1, w2) << "test premise: the pool recycled the array";

  const auto events = obs::drain();
  obs::set_enabled(false);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].lockAddr, events[1].lockAddr);
  const std::string summary = obs::summarize(events);
  // An address-keyed summary would fold these into one lying line; the
  // symbolic identities captured at record time keep them apart.
  EXPECT_NE(summary.find("ObsRecycleA.x"), std::string::npos) << summary;
  EXPECT_NE(summary.find("ObsRecycleB.y"), std::string::npos) << summary;
}

TEST(ObsSymbols, SymbolizeResolvesClassAndIndex) {
  static runtime::ClassInfo* cls =
      runtime::register_class("ObsSymNode", {SBD_SLOT("a"), SBD_SLOT("b")}, {});
  run_sbd([&] {
    runtime::ManagedObject* o = runtime::Heap::instance().alloc_object(cls);
    split();  // escape: the next access materializes the lock array
    (void)tx_read(o, 1);
    const core::LockWord* base = o->locks.load(std::memory_order_acquire);
    ASSERT_NE(base, nullptr);
    const obs::LockSym sym = obs::symbolize(o, base + 1);
    EXPECT_EQ(sym.cls, cls);
    EXPECT_EQ(sym.index, 1u);
    EXPECT_EQ(obs::lock_name(sym.cls, sym.index, 0), "ObsSymNode.b");
    // A word outside the instance's array keeps the class but reports
    // no index rather than inventing one.
    const obs::LockSym out = obs::symbolize(o, base + 99);
    EXPECT_EQ(out.index, obs::kNoIndex);
  });
}

TEST(ObsDeadlock, EventCarriesRealVictimAndContendedLock) {
  obs::set_enabled(true);
  obs::drain();
  runtime::GlobalRoot<Cell> a, b;
  run_sbd([&] {
    Cell ca = Cell::alloc();
    ca.init_v(0);
    a.set(ca);
    Cell cb = Cell::alloc();
    cb.init_v(0);
    b.set(cb);
  });
  std::atomic<int> phase{0};
  {
    // Forced 2-cycle: t1 writes a then b, t2 writes b then a.
    SbdThread t1([&] {
      a.get().set_v(1);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      b.get().set_v(1);
    });
    SbdThread t2([&] {
      b.get().set_v(2);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      a.get().set_v(2);
    });
    t1.start();
    t2.start();
    t1.join();
    t2.join();
  }
  obs::set_enabled(false);
  const auto events = obs::drain();
  bool sawDeadlock = false, sawGrantedWait = false;
  for (const auto& e : events) {
    if (e.kind == obs::EventKind::kDeadlock) {
      sawDeadlock = true;
      // The event is recorded AFTER victim selection: it names who was
      // sacrificed and which lock the cycle formed on — not a bare
      // "a deadlock happened somewhere".
      EXPECT_GE(e.other, 0) << "deadlock event must carry the victim txn id";
      EXPECT_NE(e.txnId, -1);
      EXPECT_NE(e.cls, nullptr) << "contended lock must be symbolized";
      EXPECT_NE(e.lockAddr, 0u);
      EXPECT_EQ(obs::lock_name(e), "ObsCell.v");
    }
    if (e.kind == obs::EventKind::kGranted && e.durationNanos > 0)
      sawGrantedWait = true;
  }
  EXPECT_TRUE(sawDeadlock);
  EXPECT_TRUE(sawGrantedWait) << "granted events must carry the wait latency";
}

TEST(ObsHot, ContentionTableRanksAndSurvivesDrain) {
  static runtime::ClassInfo* clsA =
      runtime::register_class("ObsHotA", {SBD_SLOT("x")}, {});
  static runtime::ClassInfo* clsB =
      runtime::register_class("ObsHotB", {SBD_SLOT("y")}, {});
  obs::reset_contention();
  obs::set_enabled(true);
  for (int i = 0; i < 3; i++)
    obs::record(obs::EventKind::kBlocked, 1, -1, nullptr, clsA, 0, true);
  obs::record(obs::EventKind::kBlocked, 2, -1, nullptr, clsB, 0, false);
  obs::drain();  // the table is independent of the rings
  obs::set_enabled(false);
  const auto top = obs::top_contended(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "ObsHotA.x");
  EXPECT_EQ(top[0].blocks, 3u);
  EXPECT_EQ(top[0].writes, 3u);
  EXPECT_EQ(top[1].name, "ObsHotB.y");
  const std::string report = obs::hot_report(2);
  EXPECT_NE(report.find("ObsHotA.x 3x(3w)"), std::string::npos) << report;
  obs::reset_contention();
  EXPECT_TRUE(obs::top_contended(2).empty());
}

TEST(ObsMetrics, StatsCountersAddAndDiffCoverEveryField) {
  // The static_assert in core/stats.h pins the field count; this pins
  // the behavior: add() and diff() must touch all 14 fields.
  constexpr size_t kFields = sizeof(core::StatsCounters) / sizeof(uint64_t);
  core::StatsCounters a{};
  auto* pa = reinterpret_cast<uint64_t*>(&a);
  for (size_t i = 0; i < kFields; i++) pa[i] = i + 1;

  core::StatsCounters sum{};
  sum.add(a);
  sum.add(a);
  const auto* ps = reinterpret_cast<const uint64_t*>(&sum);
  for (size_t i = 0; i < kFields; i++)
    EXPECT_EQ(ps[i], 2 * (i + 1)) << "add() misses field " << i;

  const core::StatsCounters zero = sum.diff(sum);
  const auto* pz = reinterpret_cast<const uint64_t*>(&zero);
  for (size_t i = 0; i < kFields; i++)
    EXPECT_EQ(pz[i], 0u) << "diff() misses field " << i;
}

TEST(ObsMetrics, SnapshotContainsEverySection) {
  const std::string json = obs::metrics_json();
  for (const char* key :
       {"\"counters\"", "\"acqRls\"", "\"deadlocksResolved\"", "\"txnFootprints\"",
        "\"gauges\"", "\"lockpool\"", "\"watchdog\"", "\"degrade\"", "\"trace\"",
        "\"dropped\"", "\"hotLocks\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in:\n"
                                                 << json;
}

TEST(ObsMetrics, ExportWritesRequestedFile) {
  const std::string path = ::testing::TempDir() + "obs_metrics_test.json";
  ASSERT_TRUE(obs::export_metrics(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  const size_t got = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_GT(got, 0u);
  EXPECT_EQ(buf[0], '{');
}

}  // namespace
}  // namespace sbd
