// End-to-end oracle check: a real 2-thread SBD run — transfers with
// read->write upgrades, splits, and injected CAS failures plus
// split-aborts — recorded under full trace and proven serializable by
// the happens-before checker. Registered once per lock-granularity
// mode in tests/CMakeLists.txt (the mode is parsed once per process),
// so the same invariant holds under field, striped, object, and the
// live adaptive controller.
#include <gtest/gtest.h>

#include <cstdint>

#include "analyzer/oracle.h"
#include "api/sbd.h"
#include "common/rng.h"
#include "core/fault.h"
#include "core/obs.h"

namespace sbd {
namespace {

class Acct : public runtime::TypedRef<Acct> {
 public:
  SBD_CLASS(OracleAcct, SBD_SLOT("bal"))
  SBD_FIELD_I64(0, bal)
};

TEST(OracleE2E, SeededChaosRunIsOracleClean) {
  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 500;
  constexpr int kThreads = 2;
  constexpr int kTransfers = 40;

  obs::set_enabled(true);
  obs::drain();  // start from empty rings
  const uint64_t droppedBefore = obs::dropped();
  obs::set_full_trace(true);

  fault::FaultPlan plan;
  plan.seed = 0x5eed0e2e;
  plan.delayNanos = 5'000;
  plan.with(fault::Site::kSplitAbort, 0.1).with(fault::Site::kLockCas, 0.2);
  fault::PlanScope scope{plan};

  runtime::GlobalRoot<runtime::RefArray<Acct>> accounts;
  run_sbd([&] {
    auto arr = runtime::RefArray<Acct>::make(kAccounts);
    for (int i = 0; i < kAccounts; i++) {
      Acct a = Acct::alloc();
      a.init_bal(kInitial);
      arr.init_set(static_cast<uint64_t>(i), a);
    }
    accounts.set(arr);
  });

  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&, t] {
        Rng rng(mix64(0xe2eull + static_cast<uint64_t>(t)));
        for (int i = 0; i < kTransfers; i++) {
          const auto from = rng.below(kAccounts);
          uint64_t to = rng.below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          const int64_t amount = 1 + static_cast<int64_t>(rng.below(9));
          Acct a = accounts.get().get(from);
          Acct b = accounts.get().get(to);
          if (a.bal() >= amount) {  // read, then write: upgrade path
            a.set_bal(a.bal() - amount);
            b.set_bal(b.bal() + amount);
          }
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }

  int64_t total = 0;
  run_sbd([&] {
    for (int i = 0; i < kAccounts; i++)
      total += accounts.get().get(static_cast<uint64_t>(i)).bal();
  });
  EXPECT_EQ(total, kAccounts * kInitial);

  obs::set_full_trace(false);
  const auto events = obs::drain();
  obs::set_enabled(false);
  const uint64_t dropped = obs::dropped() - droppedBefore;
  EXPECT_EQ(dropped, 0u) << "ring overflow would blind the oracle";

  const std::vector<oracle::Rec> recs = oracle::from_obs(events);
  const oracle::Report rep = oracle::check(recs, dropped);
  EXPECT_TRUE(rep.ok()) << oracle::summary_line(rep) << "\n"
                        << oracle::format_windows(recs, rep);
  EXPECT_GT(rep.acquires, 0u);
  EXPECT_GT(rep.releases, 0u);
  EXPECT_GT(rep.commits, 0u) << "full trace must carry commit-order events";
}

}  // namespace
}  // namespace sbd
