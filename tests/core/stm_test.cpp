// Integration tests of the STM core: locking semantics, undo/abort,
// conflict serialization, deadlock resolution, splits.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/sbd.h"

namespace sbd {
namespace {

using core::tls_context;
using core::TxnManager;

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(Cell, SBD_SLOT("value"), SBD_SLOT_REF("next"), SBD_SLOT_FINAL("tag"))
  SBD_FIELD_I64(0, value)
  SBD_FIELD_REF(1, next, Cell)
  SBD_FIELD_FINAL_I64(2, tag)

  static Cell make(int64_t v, int64_t tag = 0) {
    Cell c = alloc();
    c.init_value(v);
    c.init_tag(tag);
    return c;
  }
};

TEST(Stm, ReadWriteWithinSection) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    Cell c = Cell::make(41);
    c.set_value(c.value() + 1);
    EXPECT_EQ(c.value(), 42);
    root.set(c);
  });
  // After the section committed, the value persists.
  run_sbd([&] { EXPECT_EQ(root.get().value(), 42); });
}

TEST(Stm, NewInstanceAccessesNeedNoLock) {
  run_sbd([&] {
    auto& tc = tls_context();
    const auto before = tc.stats;
    Cell c = Cell::make(0);
    for (int i = 0; i < 100; i++) c.set_value(i);
    const auto after = tc.stats;
    EXPECT_EQ(after.acqRls - before.acqRls, 0u) << "new instances must not lock";
    EXPECT_GE(after.checkNew - before.checkNew, 100u);
  });
}

TEST(Stm, EscapedInstanceLocksOnFirstAccess) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(7));
    split();  // instance escapes: locks flip to UNALLOC
    auto& tc = tls_context();
    const auto before = tc.stats;
    Cell c = root.get();
    EXPECT_EQ(c.value(), 7);
    const auto after = tc.stats;
    EXPECT_EQ(after.lockInit - before.lockInit, 1u);
    EXPECT_EQ(after.acqRls - before.acqRls, 1u);
  });
}

TEST(Stm, RepeatAccessIsOwnedCheckOnly) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(1));
    split();
    Cell c = root.get();
    (void)c.value();  // acquires the read lock
    auto& tc = tls_context();
    const auto before = tc.stats;
    for (int i = 0; i < 50; i++) (void)c.value();
    const auto after = tc.stats;
    EXPECT_EQ(after.acqRls - before.acqRls, 0u);
    EXPECT_EQ(after.checkOwned - before.checkOwned, 50u);
  });
}

TEST(Stm, FinalFieldsNeverSynchronize) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(1, /*tag=*/99));
    split();
    Cell c = root.get();
    auto& tc = tls_context();
    const auto before = tc.stats;
    for (int i = 0; i < 10; i++) EXPECT_EQ(c.tag(), 99);
    const auto after = tc.stats;
    EXPECT_EQ(after.acqRls - before.acqRls, 0u);
    EXPECT_EQ(after.checkOwned - before.checkOwned, 0u);
    EXPECT_EQ(after.checkNew - before.checkNew, 0u);
  });
}

TEST(Stm, AbortRollsBackHeapWrites) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    static bool aborted;
    aborted = false;  // reset BEFORE the checkpoint: retries re-run code after split()
    root.set(Cell::make(10));
    split();  // value 10 is committed
    Cell c = root.get();
    c.set_value(999);
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(tls_context());  // roll back and re-execute
    }
    // On the retry, the write of 999 happened again — but the abort
    // must have restored 10 in between; verify via a fresh read after
    // rolling the retry forward.
    EXPECT_EQ(c.value(), 999);
    split();
  });
  run_sbd([&] { EXPECT_EQ(root.get().value(), 999); });
}

TEST(Stm, AbortDiscardsNewObjects) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    static bool aborted;
    aborted = false;  // before the checkpoint: not re-run on retry
    root.set(Cell::make(1));
    split();
    static uint64_t abortsBefore;
    auto& tc = tls_context();
    if (!aborted) abortsBefore = tc.stats.aborts;
    Cell fresh = Cell::make(123);   // init-logged
    root.get().set_next(fresh);     // link it
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(tc);
    }
    EXPECT_EQ(tc.stats.aborts, abortsBefore + 1);
  });
  run_sbd([&] {
    // The retry re-created and re-linked a new object; it must be valid.
    EXPECT_EQ(root.get().next().value(), 123);
  });
}

TEST(Stm, AbortRestoresStackLocals) {
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    int64_t local = 5;
    split();  // checkpoint captures local == 5
    local += 100;
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(tls_context());
    }
    // Retry: local was restored to 5 and re-incremented once.
    EXPECT_EQ(local, 105);
  });
}

TEST(Stm, SplitMakesEffectsVisibleAndReleasesLocks) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(0));
    split();
    Cell c = root.get();
    c.set_value(5);
    auto& tc = tls_context();
    EXPECT_GT(tc.txn.num_locks(), 0u);
    split();
    EXPECT_EQ(tc.txn.num_locks(), 0u) << "split must release all locks";
  });
}

TEST(Stm, ConcurrentIncrementsAreSerialized) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] { root.set(Cell::make(0)); });
  constexpr int kThreads = 4, kIncs = 500;
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < kIncs; i++) {
          Cell c = root.get();
          c.set_value(c.value() + 1);
          split();  // release the lock so other threads can increment
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] { EXPECT_EQ(root.get().value(), kThreads * kIncs); });
}

TEST(Stm, WithoutSplitsStillNoLostUpdates) {
  // Missing splits serialize but never corrupt (§2.1 "incremental").
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] { root.set(Cell::make(0)); });
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 100; i++) {
          Cell c = root.get();
          c.set_value(c.value() + 1);
        }
        // No split: the whole body is one atomic section.
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] { EXPECT_EQ(root.get().value(), 300); });
}

TEST(Stm, OpacityReadersSeeConsistentPairs) {
  runtime::GlobalRoot<Cell> a, b;
  run_sbd([&] {
    a.set(Cell::make(0));
    b.set(Cell::make(0));
  });
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistent{0};
  {
    SbdThread writer([&] {
      for (int i = 1; i <= 300; i++) {
        a.get().set_value(i);
        b.get().set_value(i);
        split();
      }
      stop = true;
    });
    SbdThread reader([&] {
      while (!stop.load()) {
        const int64_t x = a.get().value();
        const int64_t y = b.get().value();
        if (x != y) inconsistent++;
        split();
      }
    });
    writer.start();
    reader.start();
    writer.join();
    reader.join();
  }
  EXPECT_EQ(inconsistent.load(), 0);
}

TEST(Stm, DeadlockIsResolvedByAbortingYoungest) {
  runtime::GlobalRoot<Cell> a, b;
  run_sbd([&] {
    a.set(Cell::make(0));
    b.set(Cell::make(0));
  });
  std::atomic<int> phase{0};
  const auto statsBefore = TxnManager::instance().snapshot_stats();
  {
    SbdThread t1([&] {
      a.get().set_value(1);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }  // both hold their first lock
      b.get().set_value(1);  // blocks on t2 -> cycle
    });
    SbdThread t2([&] {
      b.get().set_value(2);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      a.get().set_value(2);  // blocks on t1 -> deadlock
    });
    t1.start();
    t2.start();
    t1.join();
    t2.join();
  }
  const auto statsAfter = TxnManager::instance().snapshot_stats();
  EXPECT_GE(statsAfter.aborts - statsBefore.aborts, 1u);
  EXPECT_GE(statsAfter.deadlocksResolved - statsBefore.deadlocksResolved, 1u);
  // Both threads eventually committed; whoever retried last wins.
  run_sbd([&] {
    const int64_t av = a.get().value();
    const int64_t bv = b.get().value();
    EXPECT_TRUE((av == 1 && bv == 1) || (av == 2 && bv == 2) ||
                (av == 2 && bv == 1) || (av == 1 && bv == 2));
  });
}

TEST(Stm, ArrayElementGranularity) {
  // Two threads writing disjoint elements of one array never conflict.
  runtime::GlobalRoot<I64Array> arr;
  run_sbd([&] { arr.set(I64Array::make(64)); });
  const auto before = TxnManager::instance().snapshot_stats();
  {
    SbdThread t1([&] {
      for (int r = 0; r < 200; r++) {
        for (int i = 0; i < 32; i++) arr.get().set(i, r);
        split();
      }
    });
    SbdThread t2([&] {
      for (int r = 0; r < 200; r++) {
        for (int i = 32; i < 64; i++) arr.get().set(i, r);
        split();
      }
    });
    t1.start();
    t2.start();
    t1.join();
    t2.join();
  }
  const auto after = TxnManager::instance().snapshot_stats();
  EXPECT_EQ(after.aborts - before.aborts, 0u)
      << "element-granularity locking must not conflict on disjoint elements";
  run_sbd([&] {
    for (int i = 0; i < 64; i++) EXPECT_EQ(arr.get().get(i), 199);
  });
}

TEST(Stm, UpgradeReadToWrite) {
  runtime::GlobalRoot<Cell> root;
  run_sbd([&] {
    root.set(Cell::make(5));
    split();
    Cell c = root.get();
    const int64_t v = c.value();  // read lock
    c.set_value(v * 2);           // sole-reader upgrade
    EXPECT_EQ(c.value(), 10);
  });
  run_sbd([&] { EXPECT_EQ(root.get().value(), 10); });
}

TEST(Stm, ByteArrayUndoCoversWholeWords) {
  runtime::GlobalRoot<ByteArray> root;
  run_sbd([&] {
    static bool aborted;
    aborted = false;  // before the checkpoint: not re-run on retry
    ByteArray a = ByteArray::make(32);
    for (int i = 0; i < 32; i++) a.init_set(i, static_cast<int8_t>(i));
    root.set(a);
    split();
    ByteArray b = root.get();
    // Write several bytes within the same 8-byte lock granule.
    b.set(0, 100);
    b.set(1, 101);
    b.set(7, 107);
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(tls_context());
    }
    split();
  });
  run_sbd([&] {
    // The retry re-applied the writes; the in-between rollback must have
    // restored the whole granule, so untouched bytes are intact.
    ByteArray b = root.get();
    EXPECT_EQ(b.get(0), 100);
    EXPECT_EQ(b.get(1), 101);
    EXPECT_EQ(b.get(2), 2);
    EXPECT_EQ(b.get(7), 107);
    EXPECT_EQ(b.get(8), 8);
  });
}

TEST(Stm, TxnIdReleasedOnJoin) {
  // Join releases the parent's transaction id while waiting (§3.5).
  run_sbd([&] {
    const int before = TxnManager::instance().id_pool().available();
    SbdThread child([&] {
      // While the child runs, the parent has released its id; child has
      // one. So availability is the same as before from the child's view
      // modulo its own id — just check we got a valid section.
      EXPECT_TRUE(core::tls_context().txn.active());
    });
    child.start();
    child.join();
    const int after = TxnManager::instance().id_pool().available();
    EXPECT_EQ(before, after);
  });
}

TEST(Stm, DeferredThreadStartHappensAtCommit) {
  std::atomic<bool> childRan{false};
  run_sbd([&] {
    SbdThread child([&] { childRan = true; });
    child.start();
    // Still inside the starting section: the child must not run yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(childRan.load());
    child.join();  // splits -> deferred start fires -> waits
    EXPECT_TRUE(childRan.load());
  });
}

}  // namespace
}  // namespace sbd
