// Property-style STM tests: randomized workloads over parameter sweeps
// asserting the invariants the SBD model guarantees by construction.
#include <gtest/gtest.h>

#include <atomic>

#include "api/sbd.h"
#include "common/rng.h"

namespace sbd {
namespace {

using core::TxnManager;

struct SweepParam {
  int threads;
  int opsPerThread;
  int splitEvery;  // ops per atomic section
};

void PrintTo(const SweepParam& p, std::ostream* os) {
  *os << "threads=" << p.threads << " ops=" << p.opsPerThread
      << " splitEvery=" << p.splitEvery;
}

class StmSweep : public ::testing::TestWithParam<SweepParam> {};

// Money conservation: random transfers between array slots keep the
// total constant regardless of thread count and section length.
TEST_P(StmSweep, TransfersConserveTotal) {
  const auto p = GetParam();
  constexpr int kSlots = 24;
  constexpr int64_t kInitial = 100;
  runtime::GlobalRoot<runtime::I64Array> slots;
  run_sbd([&] {
    auto a = runtime::I64Array::make(kSlots);
    for (int i = 0; i < kSlots; i++) a.init_set(i, kInitial);
    slots.set(a);
  });
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < p.threads; t++) {
      ts.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
        for (int i = 0; i < p.opsPerThread; i++) {
          const auto from = rng.below(kSlots);
          auto to = rng.below(kSlots);
          if (to == from) to = (to + 1) % kSlots;
          auto arr = slots.get();
          const int64_t amt = 1 + static_cast<int64_t>(rng.below(5));
          if (arr.get(from) >= amt) {
            arr.set(from, arr.get(from) - amt);
            arr.set(to, arr.get(to) + amt);
          }
          if ((i + 1) % p.splitEvery == 0) split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] {
    int64_t total = 0;
    for (int i = 0; i < kSlots; i++) total += slots.get().get(i);
    EXPECT_EQ(total, kSlots * kInitial);
  });
}

// Atomic multi-slot writes: a writer updates K slots to the same value
// per section; readers must never observe a mixed vector.
TEST_P(StmSweep, MultiSlotWritesAreAtomic) {
  const auto p = GetParam();
  constexpr int kWidth = 8;
  runtime::GlobalRoot<runtime::I64Array> row;
  run_sbd([&] { row.set(runtime::I64Array::make(kWidth)); });
  std::atomic<int> torn{0};
  std::atomic<bool> stop{false};
  {
    SbdThread writer([&] {
      for (int i = 1; i <= p.opsPerThread; i++) {
        auto arr = row.get();
        for (int k = 0; k < kWidth; k++) arr.set(k, i);
        split();
      }
      stop = true;
    });
    std::vector<SbdThread> readers;
    for (int t = 1; t < p.threads; t++) {
      readers.emplace_back([&] {
        while (!stop.load()) {
          auto arr = row.get();
          const int64_t first = arr.get(0);
          for (int k = 1; k < kWidth; k++)
            if (arr.get(k) != first) torn++;
          split();
        }
      });
    }
    writer.start();
    for (auto& r : readers) r.start();
    writer.join();
    for (auto& r : readers) r.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StmSweep,
    ::testing::Values(SweepParam{1, 300, 1}, SweepParam{2, 300, 1},
                      SweepParam{4, 200, 1}, SweepParam{2, 300, 5},
                      SweepParam{4, 200, 10}, SweepParam{3, 200, 50}));

// Random mixed read/write across objects with forced aborts sprinkled
// in: after every retry storm the reachable state must be consistent.
class AbortStorm : public ::testing::TestWithParam<int> {};

TEST_P(AbortStorm, RetriesPreserveLinkedStructure) {
  const int abortEvery = GetParam();
  runtime::GlobalRoot<runtime::I64Array> cells;
  run_sbd([&] {
    auto a = runtime::I64Array::make(4);
    // invariant: cells[1] == cells[0] * 2, cells[2] == cells[0] + 1
    a.init_set(0, 10);
    a.init_set(1, 20);
    a.init_set(2, 11);
    cells.set(a);
  });
  run_sbd([&] {
    static int attempt;
    attempt = 0;
    for (int round = 1; round <= 20; round++) {
      auto a = cells.get();
      a.set(0, round);
      a.set(1, round * 2);
      if (++attempt % abortEvery == 0) {
        // Mid-section abort: the partial write of this round must not
        // survive; the retry re-runs the whole round.
        core::abort_and_restart(core::tls_context());
      }
      a.set(2, round + 1);
      split();
      // Check the invariant right after each commit.
      EXPECT_EQ(cells.get().get(1), cells.get().get(0) * 2);
      EXPECT_EQ(cells.get().get(2), cells.get().get(0) + 1);
      split();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AbortRates, AbortStorm, ::testing::Values(2, 3, 7));

// The visible-reader ordering semantics (§3.2): accessing locations in
// a fixed global order across all threads never deadlocks, so no
// aborts occur even under maximal contention.
TEST(StmOrdering, OrderedAccessesNeverDeadlock) {
  runtime::GlobalRoot<runtime::I64Array> cells;
  run_sbd([&] { cells.set(runtime::I64Array::make(4)); });
  const auto before = TxnManager::instance().snapshot_stats();
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 4; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 200; i++) {
          auto a = cells.get();
          // Always 0 -> 1 -> 2 -> 3 (program order = lock order).
          for (int k = 0; k < 4; k++) a.set(k, a.get(k) + 1);
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  const auto after = TxnManager::instance().snapshot_stats().diff(before);
  EXPECT_EQ(after.deadlocksResolved, 0u)
      << "identically ordered accesses cannot form a cycle";
  run_sbd([&] {
    for (int k = 0; k < 4; k++) EXPECT_EQ(cells.get().get(k), 800);
  });
}

}  // namespace
}  // namespace sbd
