// Fair-queue behavior (§3.2 progress guarantees): once a writer waits,
// later readers line up behind it instead of starving it, and upgrading
// readers enter at the queue front.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/sbd.h"

namespace sbd {
namespace {

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(FairCell, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

// A writer that arrives while readers hold the lock must not be starved
// by a steady stream of later readers: the queue-attached word stops
// new readers from grabbing directly (read_grabbable requires no queue).
TEST(Fairness, WriterNotStarvedByReaderStream) {
  runtime::GlobalRoot<Cell> cell;
  run_sbd([&] {
    Cell c = Cell::alloc();
    c.init_v(0);
    cell.set(c);
  });
  std::atomic<bool> writerDone{false};
  std::atomic<uint64_t> readsAfterWrite{0};
  std::atomic<uint64_t> readsTotal{0};
  {
    std::vector<SbdThread> readers;
    for (int t = 0; t < 3; t++) {
      readers.emplace_back([&] {
        for (int i = 0; i < 800 && !writerDone.load(); i++) {
          (void)cell.get().v();
          readsTotal++;
          split();
        }
      });
    }
    SbdThread writer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      cell.get().set_v(42);
      split();
      writerDone = true;
    });
    for (auto& r : readers) r.start();
    writer.start();
    writer.join();
    // Writer completed while readers were still hammering the lock.
    readsAfterWrite = readsTotal.load();
    for (auto& r : readers) r.join();
  }
  EXPECT_TRUE(writerDone.load());
  run_sbd([&] { EXPECT_EQ(cell.get().v(), 42); });
}

// Dueling write-upgrades (§3.2): two readers that both upgrade resolve
// deterministically — one aborts, both eventually commit.
TEST(Fairness, DuelingUpgradesResolve) {
  runtime::GlobalRoot<Cell> cell;
  run_sbd([&] {
    Cell c = Cell::alloc();
    c.init_v(0);
    cell.set(c);
  });
  std::atomic<int> phase{0};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 2; t++) {
      ts.emplace_back([&] {
        Cell c = cell.get();
        const int64_t v = c.v();  // both take the read lock
        phase.fetch_add(1);
        while (phase.load() < 2) {
        }
        c.set_v(v + 1);  // both upgrade -> duel -> one aborts & retries
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] {
    const int64_t v = cell.get().v();
    // Lost-update semantics depend on retry interleaving, but the value
    // must be one of the serializable outcomes and never corrupt.
    EXPECT_TRUE(v == 1 || v == 2) << v;
  });
}

// Shared read locks: many concurrent readers of the same field do not
// serialize (no contended acquires when only readers are around).
TEST(Fairness, ReadersShareTheLock) {
  runtime::GlobalRoot<Cell> cell;
  run_sbd([&] {
    Cell c = Cell::alloc();
    c.init_v(7);
    cell.set(c);
  });
  const auto before = core::TxnManager::instance().snapshot_stats();
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 4; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 300; i++) {
          EXPECT_EQ(cell.get().v(), 7);
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  const auto after = core::TxnManager::instance().snapshot_stats().diff(before);
  EXPECT_EQ(after.aborts, 0u);
  // CAS races are possible (concurrent bit sets), but queue waits should
  // be essentially absent for pure readers.
  EXPECT_LT(after.contendedAcquires, 20u);
}

}  // namespace
}  // namespace sbd
