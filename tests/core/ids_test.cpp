#include "core/ids.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace sbd::core {
namespace {

TEST(TxnIdPool, StartsFull) {
  TxnIdPool pool;
  EXPECT_EQ(pool.available(), kMaxTxns);
}

TEST(TxnIdPool, AcquireAllIdsAreDistinct) {
  TxnIdPool pool;
  std::set<int> ids;
  for (int i = 0; i < kMaxTxns; i++) {
    const int id = pool.try_acquire();
    ASSERT_GE(id, 0);
    ASSERT_LT(id, kMaxTxns);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(pool.available(), 0);
  EXPECT_EQ(pool.try_acquire(), -1);
}

TEST(TxnIdPool, ReleaseMakesIdAvailableAgain) {
  TxnIdPool pool;
  const int id = pool.try_acquire();
  EXPECT_EQ(pool.available(), kMaxTxns - 1);
  pool.release(id);
  EXPECT_EQ(pool.available(), kMaxTxns);
}

TEST(TxnIdPool, BlockingAcquireWakesOnRelease) {
  TxnIdPool pool;
  std::vector<int> ids;
  for (int i = 0; i < kMaxTxns; i++) ids.push_back(pool.try_acquire());

  std::atomic<int> got{-2};
  std::thread t([&] { got = pool.acquire(); });
  // Give the thread time to block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), -2);
  pool.release(ids[7]);
  t.join();
  EXPECT_EQ(got.load(), ids[7]);
}

TEST(TxnIdPool, ConcurrentChurnKeepsInvariant) {
  TxnIdPool pool;
  std::atomic<bool> failed{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 8; t++) {
    ts.emplace_back([&] {
      for (int i = 0; i < 2000; i++) {
        const int id = pool.acquire();
        if (id < 0 || id >= kMaxTxns) failed = true;
        pool.release(id);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(pool.available(), kMaxTxns);
}

}  // namespace
}  // namespace sbd::core
