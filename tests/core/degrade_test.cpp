// Graceful degradation (core/degrade.h): a section aborting past the
// retry budget escalates to serialized execution under the global
// token, drains the abort storm, and still produces correct results.
#include <gtest/gtest.h>

#include <atomic>

#include "api/sbd.h"
#include "core/degrade.h"
#include "core/fault.h"
#include "core/transaction.h"

namespace sbd {
namespace {

class Counter : public runtime::TypedRef<Counter> {
 public:
  SBD_CLASS(DegradeCounter, SBD_SLOT("n"))
  SBD_FIELD_I64(0, n)
};

// Restores the default budget even when an assertion fails out.
struct BudgetGuard {
  explicit BudgetGuard(uint64_t b) { core::degrade::set_retry_budget(b); }
  ~BudgetGuard() { core::degrade::set_retry_budget(64); }
};

TEST(Degrade, AbortStormEscalatesToSerializedExecution) {
  const uint64_t before = core::degrade::escalations();
  const auto statsBefore = core::TxnManager::instance().snapshot_stats();
  BudgetGuard budget(3);
  {
    // 90% of splits abort: nearly every section burns through the
    // 3-retry budget, so escalation must engage. The sections still
    // commit eventually (the injector is probabilistic, and escalated
    // sections skip the backoff), so the loop terminates.
    fault::PlanScope storm(fault::single_site(fault::Site::kSplitAbort, 0.9, 42));
    run_sbd([&] {
      for (int i = 0; i < 20; i++) split();
    });
  }
  EXPECT_GT(core::degrade::escalations(), before)
      << "a 90% abort storm over a 3-retry budget must escalate";
  const auto stats = core::TxnManager::instance().snapshot_stats().diff(statsBefore);
  EXPECT_GT(stats.escalations, 0u) << "escalations must show up in per-thread stats";
  EXPECT_GT(stats.aborts, 0u);
}

TEST(Degrade, TokenIsReleasedAtCommit) {
  // Two escalation rounds back to back: if the first held onto the
  // token, the second would block forever (and the 240s test timeout
  // would flag it).
  BudgetGuard budget(2);
  for (int round = 0; round < 2; round++) {
    fault::PlanScope storm(fault::single_site(fault::Site::kSplitAbort, 0.9,
                                              static_cast<uint64_t>(100 + round)));
    run_sbd([&] {
      for (int i = 0; i < 10; i++) split();
    });
  }
}

TEST(Degrade, ConcurrentThrashersAllCompleteCorrectly) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25;
  const uint64_t before = core::degrade::escalations();
  BudgetGuard budget(2);
  runtime::GlobalRoot<Counter> total;
  run_sbd([&] {
    Counter c = Counter::alloc();
    c.init_n(0);
    total.set(c);
  });
  {
    fault::PlanScope storm(fault::single_site(fault::Site::kSplitAbort, 0.7, 9));
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < kIncrements; i++) {
          Counter c = total.get();
          c.set_n(c.n() + 1);
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  run_sbd([&] { EXPECT_EQ(total.get().n(), kThreads * kIncrements); });
  EXPECT_GT(core::degrade::escalations(), before);
}

TEST(Degrade, ZeroBudgetDisablesEscalation) {
  const uint64_t before = core::degrade::escalations();
  BudgetGuard budget(0);
  {
    fault::PlanScope storm(fault::single_site(fault::Site::kSplitAbort, 0.8, 13));
    run_sbd([&] {
      for (int i = 0; i < 15; i++) split();
    });
  }
  EXPECT_EQ(core::degrade::escalations(), before);
}

}  // namespace
}  // namespace sbd
