#include "core/lockword.h"

#include <gtest/gtest.h>

namespace sbd::core {
namespace {

TEST(LockWord, LayoutConstants) {
  // 56 owner bits + W + U + has-waiters; bits 59..63 stay zero.
  EXPECT_EQ(kMemberMask, 0x00FFFFFFFFFFFFFFULL);
  EXPECT_EQ(kWriterBit, 1ULL << 56);
  EXPECT_EQ(kUpgraderBit, 1ULL << 57);
  EXPECT_EQ(kWaitersBit, 1ULL << 58);
}

TEST(LockWord, TxnMaskOneBitPerId) {
  for (int i = 0; i < kMaxTxns; i++) {
    EXPECT_EQ(__builtin_popcountll(txn_mask(i)), 1);
    EXPECT_NE(txn_mask(i) & kMemberMask, 0u);
  }
}

TEST(LockWord, MemberRoundTrip) {
  LockWord w = 0;
  w = with_member(w, txn_mask(3));
  EXPECT_TRUE(is_member(w, txn_mask(3)));
  EXPECT_FALSE(is_member(w, txn_mask(4)));
  w = without_member(w, txn_mask(3));
  EXPECT_TRUE(is_free(w));
}

TEST(LockWord, WriterFlag) {
  LockWord w = with_member(0, txn_mask(0));
  EXPECT_FALSE(has_writer(w));
  w = with_writer(w);
  EXPECT_TRUE(has_writer(w));
  w = without_writer(w);
  EXPECT_FALSE(has_writer(w));
}

TEST(LockWord, UpgraderFlag) {
  LockWord w = 0;
  w = with_upgrader(w);
  EXPECT_TRUE(has_upgrader(w));
  EXPECT_FALSE(has_writer(w));
  w = without_upgrader(w);
  EXPECT_FALSE(has_upgrader(w));
}

TEST(LockWord, WaitersBitRoundTrip) {
  LockWord w = with_member(0, txn_mask(55));
  LockWord q = with_waiters(w);
  EXPECT_TRUE(has_waiters(q));
  EXPECT_EQ(members(q), members(w)) << "waiters bit must not disturb members";
  EXPECT_FALSE(has_waiters(without_waiters(q)));
}

TEST(LockWord, FieldsDoNotOverlap) {
  LockWord w = 0;
  w = with_member(w, txn_mask(55));
  w = with_writer(w);
  w = with_upgrader(w);
  w = with_waiters(w);
  EXPECT_TRUE(is_member(w, txn_mask(55)));
  EXPECT_TRUE(has_writer(w));
  EXPECT_TRUE(has_upgrader(w));
  EXPECT_TRUE(has_waiters(w));
  EXPECT_EQ(members(w), txn_mask(55));
}

TEST(LockWord, ReadGrabbable) {
  EXPECT_TRUE(read_grabbable(0));
  EXPECT_TRUE(read_grabbable(with_member(0, txn_mask(2))));  // shared read
  EXPECT_FALSE(read_grabbable(with_writer(with_member(0, txn_mask(2)))));
  EXPECT_FALSE(read_grabbable(with_upgrader(with_member(0, txn_mask(2)))));
  EXPECT_FALSE(read_grabbable(with_waiters(0)));  // fairness: waiters queued
}

TEST(LockWord, WriteGrabbable) {
  const LockWord me = txn_mask(1);
  EXPECT_TRUE(write_grabbable(0, me));
  // Sole-reader upgrade is allowed.
  EXPECT_TRUE(write_grabbable(with_member(0, me), me));
  // Not with other readers present.
  EXPECT_FALSE(write_grabbable(with_member(with_member(0, me), txn_mask(2)), me));
  // Not when waiters are parked (they reached the word first).
  EXPECT_FALSE(write_grabbable(with_waiters(0), me));
  // Not when another transaction holds a write lock.
  EXPECT_FALSE(write_grabbable(with_writer(with_member(0, txn_mask(2))), me));
}

TEST(LockWord, SoleMember) {
  const LockWord me = txn_mask(9);
  EXPECT_TRUE(sole_member(with_member(0, me), me));
  EXPECT_FALSE(sole_member(with_member(with_member(0, me), txn_mask(10)), me));
  EXPECT_FALSE(sole_member(0, me));
}

}  // namespace
}  // namespace sbd::core
