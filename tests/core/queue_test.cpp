// Wait-queue unit tests (§3.2): upgrader-priority ordering inside one
// queue, and the 6-bit queue-id pool's exhaustion invariant and id
// recycling. The fairness_test covers the end-to-end starvation
// behavior; these pin the data-structure contracts directly.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <vector>

#include "core/fwd.h"
#include "core/queue.h"

namespace sbd::core {
namespace {

Waiter reader(int id) { return Waiter{id, /*wantWrite=*/false, /*upgrader=*/false}; }
Waiter writer(int id) { return Waiter{id, /*wantWrite=*/true, /*upgrader=*/false}; }
Waiter upgrader(int id) { return Waiter{id, /*wantWrite=*/true, /*upgrader=*/true}; }

TEST(WaitQueue, FifoForPlainWaitersUpgradersEnterAtFront) {
  WaitQueue q;
  std::lock_guard<std::mutex> lk(q.mu);
  q.enqueue(reader(1));
  q.enqueue(writer(2));
  q.enqueue(reader(3));
  // Plain waiters keep arrival order regardless of read/write.
  EXPECT_EQ(q.position_of(1), 0);
  EXPECT_EQ(q.position_of(2), 1);
  EXPECT_EQ(q.position_of(3), 2);
  // An upgrading reader jumps the whole line (shortens the window for
  // dueling upgrades).
  q.enqueue(upgrader(4));
  EXPECT_EQ(q.position_of(4), 0);
  EXPECT_EQ(q.position_of(1), 1);
  // A second upgrader enters ahead of the first: last-upgrader-first is
  // the push_front contract.
  q.enqueue(upgrader(5));
  EXPECT_EQ(q.position_of(5), 0);
  EXPECT_EQ(q.position_of(4), 1);
  EXPECT_EQ(q.position_of(3), 4);
}

TEST(WaitQueue, OnlyReadersAheadTreatsUpgradersAsWriters) {
  WaitQueue q;
  std::lock_guard<std::mutex> lk(q.mu);
  q.enqueue(reader(1));
  q.enqueue(reader(2));
  q.enqueue(writer(3));
  q.enqueue(reader(4));
  // Readers behind only readers may be granted together...
  EXPECT_TRUE(q.only_readers_ahead(q.position_of(1)));
  EXPECT_TRUE(q.only_readers_ahead(q.position_of(2)));
  // ...but never past a waiting writer (that is the anti-starvation rule).
  EXPECT_FALSE(q.only_readers_ahead(q.position_of(4)));
  // Upgraders count as writers for the check even though wantWrite
  // arrived via upgrade.
  WaitQueue q2;
  std::lock_guard<std::mutex> lk2(q2.mu);
  q2.enqueue(reader(1));
  q2.enqueue(upgrader(2));
  EXPECT_FALSE(q2.only_readers_ahead(q2.position_of(1)));
}

TEST(WaitQueue, RemoveDropsExactlyTheNamedWaiter) {
  WaitQueue q;
  std::lock_guard<std::mutex> lk(q.mu);
  q.enqueue(reader(1));
  q.enqueue(writer(2));
  q.enqueue(reader(3));
  q.remove(2);
  EXPECT_EQ(q.position_of(2), -1);
  EXPECT_EQ(q.position_of(1), 0);
  EXPECT_EQ(q.position_of(3), 1);
  q.remove(99);  // absent id: no effect
  EXPECT_EQ(q.waiters.size(), 2u);
}

// The pool's 63 ids fit the 6-bit queue-id field of the lock word
// (id 0 means "no queue"). Allocating every id must hand out exactly
// 1..63 once each — the invariant that makes the id fit by construction.
TEST(QueuePool, HandsOutAllSixtyThreeDistinctIds) {
  QueuePool pool;
  std::set<int> ids;
  for (int i = 0; i < kNumQueues; i++) {
    const int qid = pool.alloc(nullptr, nullptr);
    EXPECT_GE(qid, 1);
    EXPECT_LE(qid, kNumQueues);
    EXPECT_TRUE(ids.insert(qid).second) << "duplicate qid " << qid;
    EXPECT_FALSE(pool.get(qid).detached);
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(kNumQueues));
  // Return everything following the caller contract: detach under q.mu,
  // then free.
  for (int qid : ids) {
    WaitQueue& q = pool.get(qid);
    std::lock_guard<std::mutex> lk(q.mu);
    q.detached = true;
    q.boundWord = nullptr;
    q.boundObj = nullptr;
    pool.free(qid);
  }
}

TEST(QueuePool, RecyclesFreedIdsLowestFirst) {
  QueuePool pool;
  std::vector<int> first;
  for (int i = 0; i < 5; i++) first.push_back(pool.alloc(nullptr, nullptr));
  auto release = [&](int qid) {
    WaitQueue& q = pool.get(qid);
    std::lock_guard<std::mutex> lk(q.mu);
    q.detached = true;
    q.boundWord = nullptr;
    q.boundObj = nullptr;
    pool.free(qid);
  };
  // Free the middle one; the next alloc must reuse it (countr_zero scan
  // picks the lowest free bit), not burn a fresh id.
  release(first[2]);
  EXPECT_EQ(pool.alloc(nullptr, nullptr), first[2]);
  // Drain-and-refill keeps the working set compact: free all, realloc
  // all, and the same id set comes back.
  std::set<int> before(first.begin(), first.end());
  for (int qid : first) release(qid);
  std::set<int> after;
  for (int i = 0; i < 5; i++) after.insert(pool.alloc(nullptr, nullptr));
  EXPECT_EQ(before, after);
  for (int qid : after) release(qid);
}

// Rebinding after recycling: a fresh alloc of a recycled id re-binds the
// queue to the new word/object and clears `detached`, so a late enqueuer
// holding a stale qid can detect the rebind via boundWord.
TEST(QueuePool, ReallocRebindsTheQueue) {
  QueuePool pool;
  LockWord* wordA = reinterpret_cast<LockWord*>(0x10);
  LockWord* wordB = reinterpret_cast<LockWord*>(0x20);
  const int qid = pool.alloc(wordA, nullptr);
  EXPECT_EQ(pool.get(qid).boundWord, wordA);
  {
    WaitQueue& q = pool.get(qid);
    std::lock_guard<std::mutex> lk(q.mu);
    q.detached = true;
    q.boundWord = nullptr;
    q.boundObj = nullptr;
    pool.free(qid);
  }
  const int qid2 = pool.alloc(wordB, nullptr);
  EXPECT_EQ(qid2, qid);  // lowest-free-bit reuse
  EXPECT_EQ(pool.get(qid2).boundWord, wordB);
  EXPECT_FALSE(pool.get(qid2).detached);
}

}  // namespace
}  // namespace sbd::core
