// Parking-lot unit tests (§3.2): direct-handoff prefix grants, upgrader
// front entry, the park/grant race, advisory signals, bucket-collision
// isolation, and the id-pool wake-one discipline. The fairness_test
// covers end-to-end starvation behavior; these pin the data-structure
// contracts directly.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/fwd.h"
#include "core/lockword.h"
#include "core/queue.h"
#include "core/transaction.h"

namespace sbd::core {
namespace {

// Mirrors ParkingLot::bucket_for (same Fibonacci hash) so the collision
// test can pick two DISTINCT words that share a bucket on purpose.
size_t bucket_index(const LockWord* w) {
  uint64_t h = reinterpret_cast<uint64_t>(w) >> 3;
  h *= 0x9E3779B97F4A7C15ULL;
  return (h >> 58) & 63;
}

// WaitNode holds an atomic (not movable): initialize in place.
void init_node(WaitNode& n, const LockWord* word, int txnId, bool wantWrite,
               bool upgrader) {
  n.word = word;
  n.txnId = txnId;
  n.mask = txn_mask(txnId);
  n.wantWrite = wantWrite || upgrader;
  n.upgrader = upgrader;
}

TEST(ParkingLot, ReaderPrefixHandoffStopsAtFirstWriter) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  LockWord word = with_waiters(0);
  WaitNode r1;
  init_node(r1, &word, 1, false, false);
  WaitNode r2;
  init_node(r2, &word, 2, false, false);
  WaitNode w3;
  init_node(w3, &word, 3, true, false);
  WaitNode r4;
  init_node(r4, &word, 4, false, false);
  lot.publish(r1);
  lot.publish(r2);
  lot.publish(w3);
  lot.publish(r4);

  lot.unpark_word(tc, &word);
  // The grantable prefix is exactly the leading readers: both get the
  // lock in ONE word CAS, the writer and the reader behind it stay put.
  EXPECT_EQ(r1.state.load(), kNodeGranted);
  EXPECT_EQ(r2.state.load(), kNodeGranted);
  EXPECT_EQ(w3.state.load(), kNodeWaiting);
  EXPECT_EQ(r4.state.load(), kNodeWaiting);
  EXPECT_EQ(members(word), txn_mask(1) | txn_mask(2));
  EXPECT_FALSE(has_writer(word));
  EXPECT_TRUE(has_waiters(word)) << "waiters remain, bit must stay";

  // Cancel the trailing reader first (front writer still blocked by the
  // granted readers), then the writer; the final departure drops the bit.
  EXPECT_EQ(lot.cancel(tc, r4), CancelResult::kRemoved);
  EXPECT_EQ(w3.state.load(), kNodeWaiting);
  EXPECT_EQ(lot.cancel(tc, w3), CancelResult::kRemoved);
  EXPECT_FALSE(has_waiters(word)) << "empty queue must detach the bit";
}

TEST(ParkingLot, WriterHandoffClearsWaitersBitWhenQueueDrains) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  LockWord word = with_waiters(0);
  WaitNode w1;
  init_node(w1, &word, 5, true, false);
  lot.publish(w1);
  lot.unpark_word(tc, &word);
  EXPECT_EQ(w1.state.load(), kNodeGranted);
  EXPECT_TRUE(has_writer(word));
  EXPECT_TRUE(is_member(word, txn_mask(5)));
  EXPECT_FALSE(has_waiters(word)) << "sole waiter granted: bit drops in the same CAS";
}

TEST(ParkingLot, UpgraderEntersAtFrontAndBeatsEarlierWriter) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  // Txn 6 holds the read lock and the U bit; txn 7's write request was
  // queued FIRST, but the upgrader still goes in front (§3.2 — dueling
  // upgrades must resolve while the upgrader is the sole member).
  LockWord word = with_upgrader(with_member(with_waiters(0), txn_mask(6)));
  WaitNode writer;
  init_node(writer, &word, 7, true, false);
  WaitNode up;
  init_node(up, &word, 6, true, true);
  lot.publish(writer);
  lot.publish(up);

  lot.unpark_word(tc, &word);
  EXPECT_EQ(up.state.load(), kNodeGranted);
  EXPECT_EQ(writer.state.load(), kNodeWaiting);
  EXPECT_TRUE(has_writer(word));
  EXPECT_FALSE(has_upgrader(word)) << "upgrade consumed the U bit";
  EXPECT_EQ(members(word), txn_mask(6));
  EXPECT_TRUE(has_waiters(word));
  EXPECT_EQ(lot.cancel(tc, writer), CancelResult::kRemoved);
  EXPECT_FALSE(has_waiters(word));
}

TEST(ParkingLot, TimedParkReturnsOnTimeoutWithoutAWake) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  // The word is write-held by txn 9 (not a queue member): the parked
  // reader cannot be granted, so only the timeout can return.
  LockWord word = with_waiters(with_writer(with_member(0, txn_mask(9))));
  WaitNode r;
  init_node(r, &word, 10, false, false);
  lot.publish(r);
  const auto t0 = std::chrono::steady_clock::now();
  lot.park(r, 2'000'000);  // 2ms
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.state.load(), kNodeWaiting) << "timeout is not a grant";
  EXPECT_LT(waited, std::chrono::seconds(5)) << "park must be timed";
  EXPECT_EQ(lot.cancel(tc, r), CancelResult::kRemoved);
}

TEST(ParkingLot, ParkAfterGrantRaceReturnsImmediately) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  LockWord word = with_waiters(0);
  WaitNode w;
  init_node(w, &word, 11, true, false);
  lot.publish(w);
  // The handoff lands BEFORE the waiter parks — the exact window the
  // futex protocol must cover: park(expected=kWaiting) must notice the
  // state already moved and return without sleeping the full timeout.
  lot.unpark_word(tc, &word);
  ASSERT_EQ(w.state.load(), kNodeGranted);
  const auto t0 = std::chrono::steady_clock::now();
  lot.park(w, 10'000'000'000ULL);  // 10s: a lost wake would hang here
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(ParkingLot, BucketCollisionKeepsWordsIndependent) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  // Find two distinct words that land in the SAME bucket: collisions
  // share a mutex, never semantics (every list op filters on n->word).
  static LockWord pool[512];
  LockWord* wa = &pool[0];
  LockWord* wb = nullptr;
  for (size_t i = 1; i < 512 && !wb; i++)
    if (bucket_index(&pool[i]) == bucket_index(wa)) wb = &pool[i];
  ASSERT_NE(wb, nullptr) << "512 candidates must collide within 64 buckets";
  *wa = with_waiters(0);
  *wb = with_waiters(0);

  WaitNode na;
  init_node(na, wa, 12, false, false);
  WaitNode nb;
  init_node(nb, wb, 13, true, false);
  lot.publish(na);
  lot.publish(nb);
  lot.unpark_word(tc, wa);
  EXPECT_EQ(na.state.load(), kNodeGranted);
  EXPECT_EQ(nb.state.load(), kNodeWaiting) << "neighbor word must be untouched";
  EXPECT_TRUE(has_waiters(*wb));
  bool found = lot.with_waiter(wb, 13, [&](const WaitNode& n, size_t depth) {
    EXPECT_EQ(depth, 1u) << "depth counts same-word waiters only";
    EXPECT_EQ(n.txnId, 13);
  });
  EXPECT_TRUE(found);
  EXPECT_EQ(lot.cancel(tc, nb), CancelResult::kRemoved);
  EXPECT_FALSE(has_waiters(*wb));
}

TEST(ParkingLot, CancellingFrontWriterUnblocksReadersBehindIt) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  // Txn 14 holds a read lock (not queued), so the front writer is stuck
  // and the readers behind it are stuck on the writer (anti-starvation).
  LockWord word = with_waiters(with_member(0, txn_mask(14)));
  WaitNode w1;
  init_node(w1, &word, 15, true, false);
  WaitNode r2;
  init_node(r2, &word, 16, false, false);
  WaitNode r3;
  init_node(r3, &word, 17, false, false);
  lot.publish(w1);
  lot.publish(r2);
  lot.publish(r3);
  lot.unpark_word(tc, &word);
  EXPECT_EQ(w1.state.load(), kNodeWaiting);
  EXPECT_EQ(r2.state.load(), kNodeWaiting);

  // The writer aborts out of the wait: its grant pass must promote the
  // readers it was blocking, in the same bucket critical section.
  EXPECT_EQ(lot.cancel(tc, w1), CancelResult::kRemoved);
  EXPECT_EQ(r2.state.load(), kNodeGranted);
  EXPECT_EQ(r3.state.load(), kNodeGranted);
  EXPECT_EQ(members(word), txn_mask(14) | txn_mask(16) | txn_mask(17));
  EXPECT_FALSE(has_waiters(word));
}

TEST(ParkingLot, UnparkTxnSignalsExactlyTheNamedWaiter) {
  ThreadContext tc;
  auto& lot = ParkingLot::instance();
  LockWord word = with_waiters(with_writer(with_member(0, txn_mask(18))));
  WaitNode a;
  init_node(a, &word, 19, false, false);
  WaitNode b;
  init_node(b, &word, 20, false, false);
  lot.publish(a);
  lot.publish(b);
  lot.unpark_txn(&word, 20);
  EXPECT_EQ(a.state.load(), kNodeWaiting);
  EXPECT_EQ(b.state.load(), kNodeSignaled);

  // The signal is advisory: an ineligible probe consumes it (so the
  // next park really sleeps) and reports the blockers for the digest.
  GrantProbe p = lot.try_grant_self(tc, b);
  EXPECT_FALSE(p.granted);
  EXPECT_EQ(b.state.load(), kNodeWaiting);
  EXPECT_NE(p.blockers & txn_mask(18), 0u) << "holder is a blocker";
  EXPECT_NE(p.blockers & txn_mask(19), 0u) << "waiter ahead is a blocker";
  EXPECT_EQ(lot.cancel(tc, a), CancelResult::kRemoved);
  EXPECT_EQ(lot.cancel(tc, b), CancelResult::kRemoved);
}

TEST(ParkingLot, IdPoolUnparkOneNeverBurnsAWakeOnASignaledNode) {
  auto& lot = ParkingLot::instance();
  static LockWord sentinel = 0;
  WaitNode n1, n2, n3;
  for (WaitNode* n : {&n1, &n2, &n3}) {
    n->word = &sentinel;
    n->idPool = true;
    lot.publish(*n);
  }
  const uint64_t wakes0 = ParkingLot::counters().idWakes;
  EXPECT_TRUE(lot.unpark_one(&sentinel));
  EXPECT_EQ(n1.state.load(), kNodeSignaled);
  // The second wake must SKIP the already-signaled head — wake-one means
  // one wake, one distinct waiter (the no-thundering-herd discipline).
  EXPECT_TRUE(lot.unpark_one(&sentinel));
  EXPECT_EQ(n2.state.load(), kNodeSignaled);
  EXPECT_EQ(n3.state.load(), kNodeWaiting);
  EXPECT_EQ(ParkingLot::counters().idWakes, wakes0 + 2);
  for (WaitNode* n : {&n1, &n2, &n3}) lot.remove(*n);
  EXPECT_FALSE(lot.unpark_one(&sentinel)) << "empty key: no one to wake";
}

}  // namespace
}  // namespace sbd::core
