// The fault-plan registry (core/fault.h): per-site determinism, stream
// independence, counters, and — the reason the subsystem exists —
// PlanScope restoring the COMPLETE previous state, including stream
// positions, so nested scopes are invisible to the enclosing plan.
#include <gtest/gtest.h>

#include <vector>

#include "core/fault.h"
#include "core/inject.h"

namespace sbd::fault {
namespace {

std::vector<bool> draw(Site s, int n) {
  std::vector<bool> out;
  for (int i = 0; i < n; i++) out.push_back(should_fire(s));
  return out;
}

TEST(FaultPlan, DeterministicPerSeed) {
  set_plan(single_site(Site::kLockCas, 0.5, 99));
  const auto a = draw(Site::kLockCas, 64);
  set_plan(single_site(Site::kLockCas, 0.5, 99));
  const auto b = draw(Site::kLockCas, 64);
  EXPECT_EQ(a, b);
  set_plan(single_site(Site::kLockCas, 0.5, 100));
  EXPECT_NE(draw(Site::kLockCas, 64), a) << "a different seed must give a different stream";
  clear_plan();
}

TEST(FaultPlan, SitesDrawIndependentStreams) {
  // Draws at one site must not advance another site's stream.
  FaultPlan p;
  p.seed = 7;
  p.with(Site::kFileError, 0.5).with(Site::kDbCommit, 0.5);
  set_plan(p);
  const auto clean = draw(Site::kFileError, 32);
  set_plan(p);
  draw(Site::kDbCommit, 17);  // interleaved traffic at another site
  EXPECT_EQ(draw(Site::kFileError, 32), clean);
  clear_plan();
}

TEST(FaultPlan, RateZeroAndRateOne) {
  set_plan(single_site(Site::kGcSafepoint, 1.0, 3));
  for (int i = 0; i < 100; i++) EXPECT_TRUE(should_fire(Site::kGcSafepoint));
  // A disabled site never fires and never counts.
  EXPECT_FALSE(should_fire(Site::kLockCas));
  EXPECT_EQ(evaluated(Site::kLockCas), 0u);
  clear_plan();
  for (int i = 0; i < 100; i++) EXPECT_FALSE(should_fire(Site::kGcSafepoint));
}

TEST(FaultPlan, CountersTrackFiredAndEvaluated) {
  set_plan(single_site(Site::kQueueEnqueue, 0.5, 11));
  uint64_t hits = 0;
  for (int i = 0; i < 200; i++)
    if (should_fire(Site::kQueueEnqueue)) hits++;
  EXPECT_EQ(evaluated(Site::kQueueEnqueue), 200u);
  EXPECT_EQ(fired(Site::kQueueEnqueue), hits);
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 200u);
  clear_plan();
}

TEST(FaultPlan, DelaySitesReturnPlanDelay) {
  FaultPlan p = single_site(Site::kQueueWakeup, 1.0, 5);
  p.delayNanos = 1234;
  set_plan(p);
  EXPECT_EQ(fire_delay_nanos(Site::kQueueWakeup), 1234u);
  EXPECT_EQ(fire_delay_nanos(Site::kQueueEnqueue), 0u);  // disabled site
  clear_plan();
}

TEST(FaultPlan, PlanScopeRestoresStreamPosition) {
  // Reference: 20 uninterrupted draws.
  set_plan(single_site(Site::kSocketReset, 0.5, 21));
  const auto whole = draw(Site::kSocketReset, 20);
  // Same plan, but a nested scope runs in the middle. The outer stream
  // must resume exactly where it left off (stream position, not just
  // the seed, is part of the restored state).
  set_plan(single_site(Site::kSocketReset, 0.5, 21));
  auto firstHalf = draw(Site::kSocketReset, 10);
  {
    PlanScope inner(single_site(Site::kSocketReset, 0.9, 77));
    draw(Site::kSocketReset, 13);
    EXPECT_EQ(evaluated(Site::kSocketReset), 13u) << "inner scope counts from zero";
  }
  auto secondHalf = draw(Site::kSocketReset, 10);
  firstHalf.insert(firstHalf.end(), secondHalf.begin(), secondHalf.end());
  EXPECT_EQ(firstHalf, whole);
  clear_plan();
}

TEST(FaultPlan, PlanScopeRestoresCounters) {
  set_plan(single_site(Site::kDbLockTimeout, 1.0, 2));
  draw(Site::kDbLockTimeout, 5);
  {
    PlanScope inner(single_site(Site::kDbLockTimeout, 1.0, 3));
    draw(Site::kDbLockTimeout, 50);
  }
  EXPECT_EQ(evaluated(Site::kDbLockTimeout), 5u);
  EXPECT_EQ(fired(Site::kDbLockTimeout), 5u);
  clear_plan();
}

TEST(FaultPlan, LegacyAbortScopeRestoresEnclosingInjection) {
  // The bug the registry replaces: the old AbortInjectionScope
  // destructor force-disabled injection instead of restoring the
  // enclosing configuration.
  core::set_abort_injection(0.5, 7);
  std::vector<bool> whole;
  for (int i = 0; i < 20; i++) whole.push_back(core::should_inject_abort());
  core::set_abort_injection(0.5, 7);
  std::vector<bool> spliced;
  for (int i = 0; i < 10; i++) spliced.push_back(core::should_inject_abort());
  {
    core::AbortInjectionScope scope(0.9, 1234);
    for (int i = 0; i < 7; i++) core::should_inject_abort();
  }
  for (int i = 0; i < 10; i++) spliced.push_back(core::should_inject_abort());
  EXPECT_EQ(spliced, whole);
  core::set_abort_injection(0);
}

}  // namespace
}  // namespace sbd::fault
