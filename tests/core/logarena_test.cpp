// Segmented log arena: pointer stability across growth, cursor-reset
// reuse across sections, high-water decay, and the byte-accounting the
// Table 8 gauges derive from arena sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/sbd.h"
#include "core/logarena.h"
#include "core/transaction.h"

namespace sbd::core {
namespace {

struct Entry {
  uint64_t a = 0;
  uint64_t b = 0;
};

TEST(SegmentedLog, PushAndIterateAcrossChunks) {
  SegmentedLog<Entry, 8> log;  // small chunks so growth happens often
  for (uint64_t i = 0; i < 100; i++) log.push_back({i, i * 2});
  EXPECT_EQ(log.size(), 100u);

  uint64_t expect = 0;
  log.for_each([&](const Entry& e) {
    EXPECT_EQ(e.a, expect);
    EXPECT_EQ(e.b, expect * 2);
    expect++;
  });
  EXPECT_EQ(expect, 100u);

  uint64_t rexpect = 100;
  log.for_each_reverse([&](Entry& e) { EXPECT_EQ(e.a, --rexpect); });
  EXPECT_EQ(rexpect, 0u);
}

TEST(SegmentedLog, EntryPointersStableAcrossGrowth) {
  // The upgrade path and the GC hold entry pointers while later pushes
  // run; unlike a vector, the arena must never move an entry.
  SegmentedLog<Entry, 8> log;
  std::vector<Entry*> ptrs;
  for (uint64_t i = 0; i < 200; i++) ptrs.push_back(&log.emplace_back(i, i));
  for (uint64_t i = 0; i < 200; i++) {
    EXPECT_EQ(ptrs[i]->a, i);  // still the same storage, still intact
    ptrs[i]->b = i + 7;        // mutation through the held pointer works
  }
  uint64_t k = 0;
  log.for_each([&](const Entry& e) { EXPECT_EQ(e.b, k++ + 7); });
}

TEST(SegmentedLog, ClearReusesChunksWithoutFreeing) {
  SegmentedLog<Entry, 8> log;
  for (uint64_t i = 0; i < 64; i++) log.push_back({i, i});
  Entry* first = &log.emplace_back(uint64_t{999}, uint64_t{999});
  const size_t cap = log.capacity_bytes();

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity_bytes(), cap);  // chunks kept for the next section

  // The next section's first entry lands in the same storage.
  Entry* again = &log.emplace_back(uint64_t{1}, uint64_t{1});
  EXPECT_NE(again, nullptr);
  for (uint64_t i = 1; i < 64; i++) log.push_back({i, i});
  EXPECT_EQ(log.capacity_bytes(), cap);  // steady state: no allocator traffic
  (void)first;
}

TEST(SegmentedLog, FindLastIfReturnsNewestMatch) {
  SegmentedLog<Entry, 8> log;
  for (uint64_t i = 0; i < 50; i++) log.push_back({i % 5, i});
  Entry* e = log.find_last_if([](const Entry& x) { return x.a == 3; });
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->b, 48u);  // the newest i with i % 5 == 3
  EXPECT_EQ(log.find_last_if([](const Entry& x) { return x.a == 77; }), nullptr);
}

TEST(SegmentedLog, HighWaterDecayReleasesBurstChunks) {
  SegmentedLog<Entry, 8> log;
  for (uint64_t i = 0; i < 800; i++) log.push_back({i, i});  // 100-chunk burst
  const size_t burstCap = log.capacity_bytes();
  log.clear();

  // Many consecutive small sections: the arena is >2x over-reserved on
  // every clear, so after the decay period the excess chunks go back.
  for (int round = 0; round < 80; round++) {
    for (uint64_t i = 0; i < 4; i++) log.push_back({i, i});
    log.clear();
  }
  EXPECT_LT(log.capacity_bytes(), burstCap);
  // Still fully usable after decay.
  for (uint64_t i = 0; i < 100; i++) log.push_back({i, i});
  uint64_t k = 0;
  log.for_each([&](const Entry& e) { EXPECT_EQ(e.a, k++); });
}

// The transaction's logs are arenas: sections must reuse storage across
// split (commit) and abort boundaries, and the Table 8 byte accounting
// must track entry counts, not reserved capacity.
TEST(TxnArena, LogsResetAndReuseAcrossSplitAndAbort) {
  run_sbd([&] {
    auto& tc = core::tls_context();
    auto arr = runtime::I64Array::make(512);
    split();  // escape the array so accesses below take locks

    for (int i = 0; i < 256; i++) arr.set(static_cast<uint64_t>(i), i);
    EXPECT_GT(tc.txn.num_locks(), 0u);
    EXPECT_GT(tc.txn.undo_entries(), 0u);
    EXPECT_EQ(tc.txn.rw_set_bytes(),
              tc.txn.num_locks() * sizeof(LockRecord) +
                  tc.txn.undo_entries() * sizeof(UndoEntry));
    const size_t capBefore = tc.txn.lock_records().capacity_bytes();

    split();  // commit: logs truncate, chunks stay
    EXPECT_EQ(tc.txn.num_locks(), 0u);
    EXPECT_EQ(tc.txn.undo_entries(), 0u);
    EXPECT_EQ(tc.txn.rw_set_bytes(), 0u);
    EXPECT_EQ(tc.txn.lock_records().capacity_bytes(), capBefore);

    // Abort path: the undo replay walks the arena in reverse and the
    // restart clears it; the stored values must roll back exactly.
    static bool aborted;
    aborted = false;
    split();
    for (int i = 0; i < 256; i++) arr.set(static_cast<uint64_t>(i), -1);
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    // Retry: the first write round was committed, the -1 round was
    // rolled back before this re-execution re-applied it.
    split();
    for (int i = 0; i < 256; i++)
      EXPECT_EQ(arr.get(static_cast<uint64_t>(i)), -1) << "retry re-applied writes";
  });
}

}  // namespace
}  // namespace sbd::core
