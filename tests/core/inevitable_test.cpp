// Inevitable transactions (§3.4 alternative) and the §6 debug log.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/sbd.h"
#include "core/debug.h"
#include "core/inevitable.h"

namespace sbd {
namespace {

class Cell : public runtime::TypedRef<Cell> {
 public:
  SBD_CLASS(InevCell, SBD_SLOT("v"))
  SBD_FIELD_I64(0, v)
};

TEST(Inevitable, TokenHeldUntilSectionEnd) {
  run_sbd([&] {
    EXPECT_FALSE(core::is_inevitable());
    core::become_inevitable();
    EXPECT_TRUE(core::is_inevitable());
    core::become_inevitable();  // idempotent
    EXPECT_TRUE(core::is_inevitable());
    split();
    EXPECT_FALSE(core::is_inevitable()) << "split must release the token";
  });
}

TEST(Inevitable, OnlyOneAtATime) {
  std::atomic<int> concurrent{0}, maxConcurrent{0};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 30; i++) {
          core::become_inevitable();
          const int now = concurrent.fetch_add(1) + 1;
          int expected = maxConcurrent.load();
          while (now > expected && !maxConcurrent.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          concurrent.fetch_sub(1);
          split();  // releases the token
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(maxConcurrent.load(), 1)
      << "at most one inevitable section may exist (paper 3.4)";
}

TEST(Inevitable, NeverChosenAsDeadlockVictim) {
  runtime::GlobalRoot<Cell> a, b;
  run_sbd([&] {
    Cell ca = Cell::alloc();
    ca.init_v(0);
    a.set(ca);
    Cell cb = Cell::alloc();
    cb.init_v(0);
    b.set(cb);
  });
  std::atomic<int> phase{0};
  {
    // The inevitable thread writes a then b; the plain thread writes
    // b then a. The cycle must always sacrifice the plain thread.
    SbdThread inevitableT([&] {
      core::become_inevitable();
      a.get().set_v(1);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      b.get().set_v(1);
      split();
    });
    SbdThread plainT([&] {
      b.get().set_v(2);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      a.get().set_v(2);  // deadlock: this thread must be the victim
      split();
    });
    inevitableT.start();
    plainT.start();
    inevitableT.join();
    plainT.join();
  }
  run_sbd([&] {
    // The inevitable section committed exactly once; values are from a
    // serializable order.
    const int64_t av = a.get().v(), bv = b.get().v();
    EXPECT_TRUE((av == 1 || av == 2) && (bv == 1 || bv == 2)) << av << " " << bv;
  });
}

TEST(DebugLogT, RecordsBlockedAndDeadlockEvents) {
  core::DebugLog::enable(true);
  core::DebugLog::drain();
  runtime::GlobalRoot<Cell> a, b;
  run_sbd([&] {
    Cell ca = Cell::alloc();
    ca.init_v(0);
    a.set(ca);
    Cell cb = Cell::alloc();
    cb.init_v(0);
    b.set(cb);
  });
  std::atomic<int> phase{0};
  {
    SbdThread t1([&] {
      a.get().set_v(1);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      b.get().set_v(1);
    });
    SbdThread t2([&] {
      b.get().set_v(2);
      phase.fetch_add(1);
      while (phase.load() < 2) {
      }
      a.get().set_v(2);
    });
    t1.start();
    t2.start();
    t1.join();
    t2.join();
  }
  core::DebugLog::enable(false);
  const auto events = core::DebugLog::drain();
  bool sawBlocked = false, sawDeadlock = false, sawAbort = false;
  for (const auto& e : events) {
    sawBlocked |= e.kind == core::DebugEventKind::kBlocked;
    sawDeadlock |= e.kind == core::DebugEventKind::kDeadlock;
    sawAbort |= e.kind == core::DebugEventKind::kAborted;
  }
  EXPECT_TRUE(sawBlocked);
  EXPECT_TRUE(sawDeadlock);
  EXPECT_TRUE(sawAbort);
  const std::string summary = core::DebugLog::summarize(events);
  EXPECT_NE(summary.find("deadlocks"), std::string::npos);
  // Contention is attributed symbolically (class.field via the class
  // registry), not by recyclable raw lock-word address.
  EXPECT_NE(summary.find("InevCell.v"), std::string::npos) << summary;
}

TEST(DebugLogT, DisabledMeansFree) {
  core::DebugLog::enable(false);
  core::DebugLog::drain();
  core::DebugLog::record(core::DebugEventKind::kBlocked, 1, -1, nullptr, false);
  EXPECT_EQ(core::DebugLog::size(), 0u);
}

}  // namespace
}  // namespace sbd
