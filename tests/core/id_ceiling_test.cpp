// The 56-transaction-id ceiling (§3.3): more threads than ids must
// still make progress — threads block waiting for a free id at section
// start, and id-releasing waits (join, condition wait, blocking reads)
// keep the system live. This is the mechanism behind the paper's
// Tomcat-at-32+32-threads observation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/sbd.h"
#include "core/debug.h"
#include "core/ids.h"
#include "core/watchdog.h"

namespace sbd {
namespace {

class Counter : public runtime::TypedRef<Counter> {
 public:
  SBD_CLASS(CeilCounter, SBD_SLOT("n"))
  SBD_FIELD_I64(0, n)
};

TEST(IdCeiling, MoreThreadsThanIdsAllComplete) {
  constexpr int kThreads = core::kMaxTxns + 8;  // 64 > 56
  runtime::GlobalRoot<Counter> total;
  run_sbd([&] {
    Counter c = Counter::alloc();
    c.init_n(0);
    total.set(c);
  });
  std::atomic<int> finished{0};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        for (int i = 0; i < 5; i++) {
          Counter c = total.get();
          c.set_n(c.n() + 1);
          split();
        }
        finished++;
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
  }
  EXPECT_EQ(finished.load(), kThreads);
  run_sbd([&] { EXPECT_EQ(total.get().n(), kThreads * 5); });
}

TEST(IdCeiling, PoolFullyFreeOutsideSections) {
  // No atomic section is active in this thread or any other at this
  // point, so every id is back in the pool.
  auto& pool = core::TxnManager::instance().id_pool();
  EXPECT_EQ(pool.available(), core::kMaxTxns);
  // And inside a section, exactly one id is taken.
  run_sbd([&] { EXPECT_EQ(pool.available(), core::kMaxTxns - 1); });
  EXPECT_EQ(pool.available(), core::kMaxTxns);
}

TEST(IdCeiling, WaitersReleaseIdsForProducers) {
  // A consumer waiting on a condition releases its id (§3.5), so a
  // producer can always acquire one even at the ceiling — the liveness
  // rule the paper states for the id pool.
  runtime::GlobalRoot<Counter> cond;
  run_sbd([&] {
    Counter c = Counter::alloc();
    c.init_n(0);
    cond.set(c);
  });
  std::atomic<bool> consumerDone{false};
  {
    SbdThread consumer([&] {
      Counter c = cond.get();
      while (c.n() == 0) {
        wait_on(c.raw());  // splits AND releases the id while blocked
      }
      consumerDone = true;
    });
    SbdThread producer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      Counter c = cond.get();
      c.set_n(1);
      notify_all(c.raw());
      split();
    });
    consumer.start();
    producer.start();
    consumer.join();
    producer.join();
  }
  EXPECT_TRUE(consumerDone.load());
}

TEST(IdCeiling, AcquireForTimesOutAndDiagnosesOnExhaustion) {
  // A private pool, drained dry: acquire_for must come back with -1
  // after its slice instead of blocking invisibly, and the diagnostic
  // snapshot must say why.
  core::TxnIdPool pool;
  std::vector<int> held;
  for (int i = 0; i < core::kMaxTxns; i++) {
    const int id = pool.try_acquire();
    ASSERT_GE(id, 0);
    held.push_back(id);
  }
  EXPECT_EQ(pool.available(), 0);
  EXPECT_EQ(pool.try_acquire(), -1);
  EXPECT_EQ(pool.acquire_for(2'000'000), -1);  // 2 ms slice, pool stays dry
  EXPECT_NE(pool.diagnose().find("0/" + std::to_string(core::kMaxTxns)),
            std::string::npos);

  // A waiter parked in acquire_for shows up in waiters()/diagnose() and
  // is released the moment an id comes back.
  std::thread waiter([&] {
    const int id = pool.acquire_for(10'000'000'000);  // 10 s — must not be needed
    EXPECT_GE(id, 0);
    pool.release(id);
  });
  while (pool.waiters() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_NE(pool.diagnose().find("1 waiting"), std::string::npos);
  pool.release(held.back());
  held.pop_back();
  waiter.join();
  for (int id : held) pool.release(id);
  EXPECT_EQ(pool.available(), core::kMaxTxns);
  EXPECT_EQ(pool.waiters(), 0);
}

TEST(IdCeiling, WatchdogReportsIdPoolStallUnderPressure) {
  // More threads than ids, all pinning their id (no split, no
  // id-releasing wait): the surplus threads block at section start, and
  // the watchdog must surface that as an id-pool stall.
  constexpr int kThreads = core::kMaxTxns + 2;
  core::Watchdog::Options o;
  o.stallThresholdNanos = 30'000'000;  // 30 ms
  o.pollIntervalNanos = 10'000'000;    // 10 ms
  o.abortVictimAfterNanos = 0;         // id waiters have no section to abort
  o.logToStderr = false;
  core::Watchdog::start(o);
  const uint64_t before = core::Watchdog::stalls_detected();
  core::DebugLog::drain();
  core::DebugLog::enable(true);
  std::atomic<bool> release{false};
  {
    std::vector<SbdThread> ts;
    for (int t = 0; t < kThreads; t++) {
      ts.emplace_back([&] {
        // Holds the section (and its txn id) until the main thread has
        // seen the stall.
        while (!release) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
    }
    for (auto& t : ts) t.start();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (core::Watchdog::stalls_detected() == before &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    release = true;
    for (auto& t : ts) t.join();
  }
  core::DebugLog::enable(false);
  core::Watchdog::stop();
  EXPECT_GT(core::Watchdog::stalls_detected(), before)
      << "surplus threads blocked on the id pool must be reported";
  bool sawIdStall = false;
  for (const auto& e : core::DebugLog::drain())
    if (e.kind == core::DebugEventKind::kIdPoolStall) sawIdStall = true;
  EXPECT_TRUE(sawIdStall) << "the stall must be logged as an id-pool stall";
}

}  // namespace
}  // namespace sbd
