#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sbd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++)
    if (a.next() == b.next()) same++;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; i++) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng r(7);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 20000; i++) {
    int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; i++) {
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UnitMeanNearHalf) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) sum += r.unit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Zipf, StaysInRange) {
  Zipf z(100, 0.9, 5);
  for (int i = 0; i < 10000; i++) EXPECT_LT(z.next(), 100u);
}

TEST(Zipf, IsSkewedTowardLowRanks) {
  Zipf z(1000, 0.99, 5);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++)
    if (z.next() < 100) low++;
  // With theta=0.99 the first 10% of ranks should draw well over half
  // the probability mass.
  EXPECT_GT(low, n / 2);
}

TEST(Zipf, Deterministic) {
  Zipf a(50, 0.8, 123), b(50, 0.8, 123);
  for (int i = 0; i < 500; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Fnv, DistinctStringsDistinctHashes) {
  std::set<uint64_t> hs;
  hs.insert(fnv1a("alpha"));
  hs.insert(fnv1a("beta"));
  hs.insert(fnv1a("gamma"));
  hs.insert(fnv1a(""));
  hs.insert(fnv1a("alph"));
  EXPECT_EQ(hs.size(), 5u);
}

TEST(Fnv, StableValue) { EXPECT_EQ(fnv1a("abc"), fnv1a("abc")); }

TEST(Mix64, Deterministic) { EXPECT_EQ(mix64(99), mix64(99)); }

TEST(Mix64, SpreadsBits) {
  // Consecutive inputs should produce wildly different outputs.
  std::set<uint64_t> top;
  for (uint64_t i = 0; i < 64; i++) top.insert(mix64(i) >> 56);
  EXPECT_GT(top.size(), 30u);
}

}  // namespace
}  // namespace sbd
