#include "common/options.h"

#include <gtest/gtest.h>

namespace sbd {
namespace {

Options make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Options(static_cast<int>(args.size()),
                 const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(Options, EqualsForm) {
  auto o = make({"--threads=8"});
  EXPECT_EQ(o.get_int("threads", 1), 8);
}

TEST(Options, SpaceForm) {
  auto o = make({"--threads", "4"});
  EXPECT_EQ(o.get_int("threads", 1), 4);
}

TEST(Options, BareFlagIsTrue) {
  auto o = make({"--quick"});
  EXPECT_TRUE(o.get_bool("quick", false));
}

TEST(Options, Defaults) {
  auto o = make({});
  EXPECT_EQ(o.get_int("missing", 42), 42);
  EXPECT_EQ(o.get_str("missing", "d"), "d");
  EXPECT_FALSE(o.get_bool("missing", false));
  EXPECT_DOUBLE_EQ(o.get_double("missing", 1.5), 1.5);
}

TEST(Options, DoubleParsing) {
  auto o = make({"--theta=0.99"});
  EXPECT_DOUBLE_EQ(o.get_double("theta", 0), 0.99);
}

TEST(Options, Has) {
  auto o = make({"--a=1"});
  EXPECT_TRUE(o.has("a"));
  EXPECT_FALSE(o.has("b"));
}

TEST(Options, BoolFalseValue) {
  auto o = make({"--x=false"});
  EXPECT_FALSE(o.get_bool("x", true));
}

}  // namespace
}  // namespace sbd
