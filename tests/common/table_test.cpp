#include "common/table.h"

#include <gtest/gtest.h>

namespace sbd {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Every line of the body should start at column 0 with the first cell.
  EXPECT_EQ(s.find("x"), s.find("\n", s.find("---")) + 1);
}

TEST(TextTable, PadsMissingCells) {
  TextTable t({"A", "B", "C"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("1"), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, FmtPct) { EXPECT_EQ(TextTable::fmt_pct(0.234, 1), "23.4%"); }

TEST(TextTable, FmtCount) { EXPECT_EQ(TextTable::fmt_count(186639000), "186639k"); }

TEST(TextTable, FmtBytes) { EXPECT_EQ(TextTable::fmt_bytes_k(1310720), "1280k"); }

}  // namespace
}  // namespace sbd
