#include "common/timing.h"

#include <gtest/gtest.h>

namespace sbd {
namespace {

TEST(Summarize, EmptyIsZero) {
  auto st = summarize({});
  EXPECT_EQ(st.mean, 0);
  EXPECT_EQ(st.stddev, 0);
}

TEST(Summarize, ConstantSeries) {
  auto st = summarize({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(st.mean, 2.0);
  EXPECT_DOUBLE_EQ(st.stddev, 0.0);
  EXPECT_DOUBLE_EQ(st.cov, 0.0);
  EXPECT_DOUBLE_EQ(st.min, 2.0);
  EXPECT_DOUBLE_EQ(st.max, 2.0);
}

TEST(Summarize, KnownValues) {
  auto st = summarize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(st.mean, 2.0);
  EXPECT_DOUBLE_EQ(st.stddev, 1.0);
  EXPECT_DOUBLE_EQ(st.cov, 0.5);
}

TEST(SteadyState, StopsOnLowVariance) {
  SteadyStateConfig cfg;
  cfg.window = 3;
  cfg.maxIters = 50;
  cfg.covLimit = 0.5;
  int runs = 0;
  auto st = measure_steady_state(cfg, [&] { runs++; });
  EXPECT_GE(runs, 3);
  EXPECT_LE(runs, 50);
  EXPECT_GE(st.mean, 0.0);
}

TEST(SteadyState, RespectsMaxIters) {
  SteadyStateConfig cfg;
  cfg.window = 2;
  cfg.maxIters = 4;
  cfg.covLimit = -1.0;  // unreachable (cov >= 0): always run to maxIters
  int runs = 0;
  measure_steady_state(cfg, [&] { runs++; });
  EXPECT_EQ(runs, 4);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; i++) x += static_cast<uint64_t>(i);
  EXPECT_GT(sw.nanos(), 0u);
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace sbd
