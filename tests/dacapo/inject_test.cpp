// Failure injection over the full benchmark stack: with a 40% chance of
// a forced abort at every split, every benchmark must still produce the
// exact same checksum — heap undo, stack restore, I/O replay, deferred
// actions, and DB rollback all have to hold up under retry storms.
// (The rate is high because the smallest benchmarks reach fewer than
// ten splits at this scale; the injector must fire in every run.)
#include <gtest/gtest.h>

#include "core/inject.h"
#include "dacapo/harness.h"

namespace sbd::dacapo {
namespace {

struct Case {
  const char* name;
  Benchmark (*make)();
  int threads;
};

void PrintTo(const Case& c, std::ostream* os) { *os << c.name << "/" << c.threads; }

class InjectSweep : public ::testing::TestWithParam<Case> {};

TEST_P(InjectSweep, ChecksumsSurviveForcedAborts) {
  const auto c = GetParam();
  Benchmark b = c.make();
  const Scale tiny{0.1};
  const uint64_t clean = b.sbd(tiny, c.threads).checksum;
  uint64_t injected;
  uint64_t abortsFired;
  {
    core::AbortInjectionScope inject(0.40, /*seed=*/1234);
    injected = b.sbd(tiny, c.threads).checksum;
    abortsFired = core::injected_aborts();
  }
  EXPECT_EQ(clean, injected) << "retries must be invisible to the result";
  EXPECT_GT(abortsFired, 0u) << "the injector should actually have fired";
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, InjectSweep,
    ::testing::Values(Case{"LuIndex", &luindex_benchmark, 1},
                      Case{"LuSearch", &lusearch_benchmark, 2},
                      Case{"PMD", &pmd_benchmark, 2},
                      Case{"Sunflow", &sunflow_benchmark, 2},
                      Case{"H2", &h2_benchmark, 1},
                      Case{"Tomcat", &tomcat_benchmark, 2}));

TEST(Inject, RateZeroNeverFires) {
  core::set_abort_injection(0);
  for (int i = 0; i < 1000; i++) EXPECT_FALSE(core::should_inject_abort());
}

TEST(Inject, DeterministicSequence) {
  core::set_abort_injection(0.5, 7);
  std::vector<bool> a;
  for (int i = 0; i < 64; i++) a.push_back(core::should_inject_abort());
  core::set_abort_injection(0.5, 7);
  for (int i = 0; i < 64; i++) EXPECT_EQ(core::should_inject_abort(), a[static_cast<size_t>(i)]);
  core::set_abort_injection(0);
}

}  // namespace
}  // namespace sbd::dacapo
