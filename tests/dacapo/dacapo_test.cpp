// End-to-end tests of the six DaCapo analogs: both variants run the
// same deterministic workload and must produce identical checksums
// (single-threaded, where no scheduling nondeterminism exists), and the
// SBD variants must exercise the STM (nonzero lock-operation counts).
#include "dacapo/harness.h"

#include <gtest/gtest.h>

namespace sbd::dacapo {
namespace {

Scale tiny() { return Scale{0.15}; }

class DacapoVariants : public ::testing::TestWithParam<int> {};

TEST(Dacapo, RegistryHasSixBenchmarks) {
  auto all = all_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "LuIndex");
  EXPECT_EQ(all[1].name, "LuSearch");
  EXPECT_EQ(all[2].name, "PMD");
  EXPECT_EQ(all[3].name, "Sunflow");
  EXPECT_EQ(all[4].name, "H2");
  EXPECT_EQ(all[5].name, "Tomcat");
  EXPECT_TRUE(all[0].fixedThreads);
}

TEST(Dacapo, LuIndexChecksumsMatch) {
  auto b = luindex_benchmark();
  const auto base = b.baseline(tiny(), 1);
  const auto sbdr = b.sbd(tiny(), 1);
  EXPECT_EQ(base.checksum, sbdr.checksum);
  EXPECT_GT(sbdr.stm.acqRls + sbdr.stm.checkNew + sbdr.stm.checkOwned, 0u);
}

TEST(Dacapo, LuSearchChecksumsMatch) {
  auto b = lusearch_benchmark();
  const auto base = b.baseline(tiny(), 2);
  const auto sbdr = b.sbd(tiny(), 2);
  EXPECT_EQ(base.checksum, sbdr.checksum);
  EXPECT_GT(sbdr.stm.checkOwned, 0u);
}

TEST(Dacapo, PmdChecksumsMatch) {
  auto b = pmd_benchmark();
  const auto base = b.baseline(tiny(), 2);
  const auto sbdr = b.sbd(tiny(), 2);
  EXPECT_EQ(base.checksum, sbdr.checksum);
  EXPECT_GT(sbdr.stm.commits, 0u);
}

TEST(Dacapo, SunflowChecksumsMatch) {
  auto b = sunflow_benchmark();
  const auto base = b.baseline(tiny(), 2);
  const auto sbdr = b.sbd(tiny(), 2);
  EXPECT_EQ(base.checksum, sbdr.checksum);
  // Sunflow's profile: many lock inits + owned checks (Table 7).
  EXPECT_GT(sbdr.stm.lockInit, 0u);
  EXPECT_GT(sbdr.stm.checkOwned, sbdr.stm.acqRls);
}

TEST(Dacapo, H2ChecksumsMatchSingleThreaded) {
  auto b = h2_benchmark();
  const auto base = b.baseline(tiny(), 1);
  const auto sbdr = b.sbd(tiny(), 1);
  EXPECT_EQ(base.checksum, sbdr.checksum);
}

TEST(Dacapo, H2MultiThreadedCompletes) {
  auto b = h2_benchmark();
  const auto sbdr = b.sbd(tiny(), 4);
  EXPECT_GT(sbdr.checksum, 0u);
  EXPECT_GT(sbdr.stm.commits, 0u);
}

TEST(Dacapo, TomcatChecksumsMatch) {
  auto b = tomcat_benchmark();
  const auto base = b.baseline(tiny(), 2);
  const auto sbdr = b.sbd(tiny(), 2);
  EXPECT_EQ(base.checksum, sbdr.checksum);
}

TEST_P(DacapoVariants, SbdVariantsScaleWithoutCorruption) {
  const int threads = GetParam();
  // LuSearch is a read-heavy workload whose checksum is thread-count
  // independent: per-thread query streams are seeded by thread id.
  auto b = lusearch_benchmark();
  const auto base = b.baseline(tiny(), threads);
  const auto sbdr = b.sbd(tiny(), threads);
  EXPECT_EQ(base.checksum, sbdr.checksum);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DacapoVariants, ::testing::Values(1, 2, 4));

TEST(Dacapo, EffortReportsPopulated) {
  for (const auto& b : all_benchmarks()) {
    EXPECT_GT(b.effort.splits, 0) << b.name;
    EXPECT_GT(b.effort.paperFinal, 0) << b.name;
  }
}

TEST(Dacapo, SbdRunsProduceVtmInput) {
  auto b = pmd_benchmark();
  const auto r = b.sbd(tiny(), 2);
  uint64_t busy = 0;
  for (const auto& t : r.vtm.threads) busy += t.busyNanos;
  EXPECT_GT(busy, 0u);
}

}  // namespace
}  // namespace sbd::dacapo
