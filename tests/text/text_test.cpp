#include <gtest/gtest.h>

#include "text/analysis.h"
#include "text/index.h"

namespace sbd::text {
namespace {

TEST(Tokenize, LowercasesAndSplits) {
  auto toks = tokenize("Hello, World! This is C++ code.");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "this");
  EXPECT_EQ(toks[3], "is");
  EXPECT_EQ(toks[4], "code");
}

TEST(Tokenize, DropsSingleChars) {
  auto toks = tokenize("a bb c dd");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "bb");
  EXPECT_EQ(toks[1], "dd");
}

TEST(Stem, StripsCommonSuffixes) {
  EXPECT_EQ(stem("running"), "runn");
  EXPECT_EQ(stem("jumped"), "jump");
  EXPECT_EQ(stem("quickly"), "quick");
  EXPECT_EQ(stem("boxes"), "box");
  EXPECT_EQ(stem("cats"), "cat");
  EXPECT_EQ(stem("glass"), "glass");  // -ss guarded
  EXPECT_EQ(stem("darkness"), "dark");
}

TEST(Stem, GuardsShortStems) {
  EXPECT_EQ(stem("ing"), "ing");
  EXPECT_EQ(stem("is"), "is");
}

TEST(Corpus, Deterministic) {
  CorpusConfig cfg;
  EXPECT_EQ(generate_document(cfg, 7), generate_document(cfg, 7));
  EXPECT_NE(generate_document(cfg, 7), generate_document(cfg, 8));
  EXPECT_EQ(generate_document(cfg, 3).size(), cfg.wordsPerDoc);
}

TEST(Corpus, QueriesDrawFromVocabulary) {
  CorpusConfig cfg;
  auto q = generate_query(cfg, 1, 4);
  ASSERT_EQ(q.size(), 4u);
  const auto& vocab = vocabulary();
  for (const auto& term : q)
    EXPECT_NE(std::find(vocab.begin(), vocab.end(), term), vocab.end());
}

TEST(Index, PostingsAndDocCounts) {
  InvertedIndex idx;
  idx.add_document(0, {"alpha", "beta", "alpha"});
  idx.add_document(1, {"beta", "gamma"});
  EXPECT_EQ(idx.doc_count(), 2u);
  EXPECT_EQ(idx.doc_length(0), 3u);
  ASSERT_NE(idx.postings("alpha"), nullptr);
  EXPECT_EQ(idx.postings("alpha")->size(), 1u);
  EXPECT_EQ((*idx.postings("alpha"))[0].termFreq, 2u);
  EXPECT_EQ(idx.postings("beta")->size(), 2u);
  EXPECT_EQ(idx.postings("nope"), nullptr);
}

TEST(Index, SearchRanksByTfIdf) {
  InvertedIndex idx;
  idx.add_document(0, {"apple", "apple", "apple", "pear"});
  idx.add_document(1, {"apple", "banana", "cherry", "plum"});
  idx.add_document(2, {"kiwi", "banana"});
  auto hits = idx.search({"apple"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].docId, 0u) << "higher term frequency must rank first";
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(Index, TopKBoundsResults) {
  InvertedIndex idx;
  for (uint32_t d = 0; d < 20; d++) idx.add_document(d, {"common", "word"});
  auto hits = idx.search({"common"}, 5);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(Index, DeterministicTieBreakByDocId) {
  InvertedIndex idx;
  idx.add_document(3, {"tie", "word"});
  idx.add_document(1, {"tie", "word"});
  idx.add_document(2, {"tie", "word"});
  auto hits = idx.search({"tie"}, 10);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].docId, 1u);
  EXPECT_EQ(hits[1].docId, 2u);
  EXPECT_EQ(hits[2].docId, 3u);
}

TEST(Index, SerializeRoundTrip) {
  InvertedIndex idx;
  idx.add_document(0, {"serialize", "me", "me"});
  idx.add_document(1, {"round", "trip", "me"});
  const std::string blob = idx.serialize();
  InvertedIndex back = InvertedIndex::deserialize(blob);
  EXPECT_EQ(back.doc_count(), 2u);
  EXPECT_EQ(back.doc_length(0), 3u);
  ASSERT_NE(back.postings("me"), nullptr);
  EXPECT_EQ(back.postings("me")->size(), 2u);
  // Search results identical.
  auto a = idx.search({"me", "round"}, 10);
  auto b = back.search({"me", "round"}, 10);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].docId, b[i].docId);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(Index, SerializeIsDeterministic) {
  auto build = [] {
    InvertedIndex idx;
    CorpusConfig cfg;
    cfg.numDocs = 20;
    for (uint64_t d = 0; d < cfg.numDocs; d++)
      idx.add_document(static_cast<uint32_t>(d), generate_document(cfg, d));
    return idx.serialize();
  };
  EXPECT_EQ(build(), build());
}

TEST(Scoring, TfIdfProperties) {
  // More frequent in doc -> higher; rarer in corpus -> higher.
  EXPECT_GT(tfidf_score(4, 2, 100, 50), tfidf_score(2, 2, 100, 50));
  EXPECT_GT(tfidf_score(2, 2, 100, 50), tfidf_score(2, 50, 100, 50));
  EXPECT_EQ(tfidf_score(2, 0, 100, 50), 0);
  EXPECT_EQ(tfidf_score(2, 2, 100, 0), 0);
}

}  // namespace
}  // namespace sbd::text
