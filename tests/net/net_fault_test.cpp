// Substrate fault injection (net): kSocketReset hands the client an
// already-dead socket — reads see EOF, writes vanish, the server never
// learns — and client code must cope by retrying the connection.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/fault.h"
#include "net/loopback.h"

namespace sbd::net {
namespace {

TEST(NetFault, ResetConnectionReadsEofImmediately) {
  auto listener = Network::instance().listen(8201);
  {
    fault::PlanScope plan(fault::single_site(fault::Site::kSocketReset, 1.0, 5));
    Socket c = Network::instance().connect(8201);
    c.write("lost", 4);  // dropped on the floor, like a write after RST
    char buf[8];
    EXPECT_EQ(c.read(buf, 8), 0u) << "a reset connection must read EOF";
    c.close();
    EXPECT_EQ(fault::fired(fault::Site::kSocketReset), 1u);
  }
  listener.close();
}

TEST(NetFault, ClientRetriesThroughResets) {
  auto listener = Network::instance().listen(8202);
  std::thread server([&] {
    for (;;) {
      Socket s = listener.accept();
      if (!s.valid()) return;  // listener closed
      char buf[16] = {};
      const size_t n = s.read(buf, sizeof(buf));
      if (n) s.write(std::string("echo:") + std::string(buf, n));
      s.close();
    }
  });
  constexpr int kAttempts = 40;
  int served = 0;
  {
    fault::PlanScope plan(fault::single_site(fault::Site::kSocketReset, 0.5, 17));
    for (int i = 0; i < kAttempts; i++) {
      Socket c = Network::instance().connect(8202);
      c.write("ping");
      char buf[32] = {};
      size_t total = 0, n;
      while ((n = c.read(buf + total, sizeof(buf) - total)) > 0) total += n;
      c.close();
      if (std::string(buf, total) == "echo:ping") served++;
    }
    // Every attempt either got reset or was served — none hung, none
    // half-succeeded.
    EXPECT_EQ(served + static_cast<int>(fault::fired(fault::Site::kSocketReset)),
              kAttempts);
    EXPECT_GT(served, 0);
    EXPECT_GT(fault::fired(fault::Site::kSocketReset), 0u);
  }
  listener.close();
  server.join();
}

}  // namespace
}  // namespace sbd::net
