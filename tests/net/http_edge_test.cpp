// HTTP framing and loopback-network edge cases.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "api/sbd.h"
#include "net/http.h"
#include "net/loopback.h"

namespace sbd::net {
namespace {

std::function<size_t(void*, size_t)> string_source(const std::string& wire,
                                                   std::shared_ptr<size_t> pos) {
  return [wire, pos](void* out, size_t n) -> size_t {
    const size_t take = std::min(n, wire.size() - *pos);
    std::memcpy(out, wire.data() + *pos, take);
    *pos += take;
    return take;
  };
}

TEST(HttpEdge, BareLfLineEndingsAccepted) {
  const std::string wire = "GET /x HTTP/1.1\nHost: a\n\n";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest req;
  ASSERT_TRUE(read_request(string_source(wire, pos), req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.headers.at("Host"), "a");
}

TEST(HttpEdge, HeaderWhitespaceTrimmed) {
  const std::string wire = "GET / HTTP/1.1\r\nKey:    spaced value\r\n\r\n";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest req;
  ASSERT_TRUE(read_request(string_source(wire, pos), req));
  EXPECT_EQ(req.headers.at("Key"), "spaced value");
}

TEST(HttpEdge, BodyLengthRespected) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/p";
  req.body = std::string(1000, 'x');
  const std::string wire = serialize(req) + "TRAILING GARBAGE";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest back;
  ASSERT_TRUE(read_request(string_source(wire, pos), back));
  EXPECT_EQ(back.body.size(), 1000u);
  EXPECT_EQ(back.body[999], 'x');
}

TEST(HttpEdge, TruncatedBodyReturnsWhatArrived) {
  const std::string wire = "POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest req;
  ASSERT_TRUE(read_request(string_source(wire, pos), req));
  EXPECT_EQ(req.body, "abc");
}

TEST(HttpEdge, MalformedHeaderLinesSkipped) {
  const std::string wire = "GET / HTTP/1.1\r\nno-colon-line\r\nGood: v\r\n\r\n";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest req;
  ASSERT_TRUE(read_request(string_source(wire, pos), req));
  EXPECT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(req.headers.at("Good"), "v");
}

TEST(NetEdge, WriteBlocksWhenPipeFull) {
  Pipe p(64);  // tiny capacity
  std::atomic<bool> writerDone{false};
  std::thread writer([&] {
    std::vector<uint8_t> big(256, 7);
    p.write(big.data(), big.size());  // must block until drained
    writerDone = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(writerDone.load());
  // Drain.
  uint8_t buf[256];
  size_t got = 0;
  while (got < 256) got += p.read(buf + got, sizeof(buf) - got);
  writer.join();
  EXPECT_TRUE(writerDone.load());
  for (uint8_t b : buf) EXPECT_EQ(b, 7);
}

TEST(NetEdge, WriteToClosedReaderDropsData) {
  Pipe p;
  p.close_read();
  p.write("xyz", 3);  // must not block or crash
  EXPECT_EQ(p.available(), 0u);
}

TEST(NetEdge, WaitReadableSeesEof) {
  Pipe p;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.close_write();
  });
  EXPECT_FALSE(p.wait_readable());
  closer.join();
}

TEST(NetEdge, SequentialConnectionsToOnePort) {
  auto listener = Network::instance().listen(8801);
  std::thread server([&] {
    for (int i = 0; i < 3; i++) {
      Socket s = listener.accept();
      char c;
      if (s.read(&c, 1) == 1) s.write(&c, 1);
      s.close();
    }
  });
  for (int i = 0; i < 3; i++) {
    Socket c = Network::instance().connect(8801);
    const char msg = static_cast<char>('a' + i);
    c.write(&msg, 1);
    char back = 0;
    EXPECT_EQ(c.read(&back, 1), 1u);
    EXPECT_EQ(back, msg);
    c.close();
  }
  server.join();
  listener.close();
}

TEST(NetEdge, RebindAfterClose) {
  auto l1 = Network::instance().listen(8802);
  l1.close();
  auto l2 = Network::instance().listen(8802);  // must not assert
  l2.close();
  SUCCEED();
}

}  // namespace
}  // namespace sbd::net
