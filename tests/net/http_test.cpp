// The net-layer hardening this PR's serving scenario tripped over:
// hostile Content-Length values (the std::stoul remote crash), header
// case sensitivity, serialize() duplicating Content-Length / emitting
// " ERR" reason phrases, and Network::connect aborting the process on
// a connect timeout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <memory>
#include <string>

#include "net/http.h"
#include "net/loopback.h"

namespace sbd::net {
namespace {

std::function<size_t(void*, size_t)> string_source(const std::string& wire,
                                                   std::shared_ptr<size_t> pos) {
  return [wire, pos](void* out, size_t n) -> size_t {
    const size_t take = std::min(n, wire.size() - *pos);
    std::memcpy(out, wire.data() + *pos, take);
    *pos += take;
    return take;
  };
}

ReadStatus parse(const std::string& wire, HttpRequest& req,
                 size_t maxBody = kMaxBodyBytes) {
  auto pos = std::make_shared<size_t>(0);
  return read_request_status(string_source(wire, pos), req, maxBody);
}

// --- hostile Content-Length (the remote-crash corpus) -----------------------

TEST(HttpHardening, NonNumericContentLengthIsBadRequest) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: banana\r\n\r\n", req),
            ReadStatus::kBadRequest);
}

TEST(HttpHardening, NegativeContentLengthIsBadRequest) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: -1\r\n\r\n", req),
            ReadStatus::kBadRequest);
}

TEST(HttpHardening, EmptyContentLengthIsBadRequest) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: \r\n\r\n", req),
            ReadStatus::kBadRequest);
}

TEST(HttpHardening, HugeContentLengthIsRejectedNotAllocated) {
  // 2^64 overflows unsigned long; the old std::stoul path threw
  // out_of_range and took the worker down. Now: kBadRequest, no 16 EiB
  // allocation attempt.
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n", req),
            ReadStatus::kBadRequest);
}

TEST(HttpHardening, OverCapContentLengthIsTooLarge) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n", req),
            ReadStatus::kTooLarge);
}

TEST(HttpHardening, CustomCapApplies) {
  HttpRequest req;
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world", req,
                  /*maxBody=*/10),
            ReadStatus::kTooLarge);
  EXPECT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: 10\r\n\r\nhelloworld", req,
                  /*maxBody=*/10),
            ReadStatus::kOk);
  EXPECT_EQ(req.body, "helloworld");
}

TEST(HttpHardening, TruncatedStartLineIsBadRequestNotOk) {
  HttpRequest req;
  EXPECT_EQ(parse("GET\r\n\r\n", req), ReadStatus::kBadRequest);
}

TEST(HttpHardening, EmptyStreamIsEof) {
  HttpRequest req;
  EXPECT_EQ(parse("", req), ReadStatus::kEof);
}

TEST(HttpHardening, WellFormedRequestStillParses) {
  HttpRequest req;
  ASSERT_EQ(parse("POST /p HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc", req),
            ReadStatus::kOk);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.body, "abc");
}

// --- case-insensitive headers -----------------------------------------------

TEST(HttpHardening, LowercaseContentLengthFramesBody) {
  HttpRequest req;
  ASSERT_EQ(parse("POST /p HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello", req),
            ReadStatus::kOk);
  EXPECT_EQ(req.body, "hello");
}

TEST(HttpHardening, HeaderLookupIsCaseInsensitive) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nX-MiXeD-CaSe: v\r\n\r\n", req), ReadStatus::kOk);
  EXPECT_EQ(req.headers.at("x-mixed-case"), "v");
  EXPECT_EQ(req.headers.at("X-MIXED-CASE"), "v");
  EXPECT_EQ(req.headers.count("X-Mixed-Case"), 1u);
}

TEST(HttpHardening, DuplicateCaseVariantHeadersCollapse) {
  HttpRequest req;
  ASSERT_EQ(parse("GET / HTTP/1.1\r\nA: 1\r\na: 2\r\n\r\n", req), ReadStatus::kOk);
  EXPECT_EQ(req.headers.size(), 1u);
}

// --- serialize fidelity -----------------------------------------------------

TEST(HttpHardening, SerializeRequestEmitsOneContentLength) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/p";
  req.headers["content-length"] = "3";  // caller already set it (any case)
  req.body = "abc";
  const std::string wire = serialize(req);
  size_t count = 0;
  std::string lower = wire;
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (size_t at = lower.find("content-length:"); at != std::string::npos;
       at = lower.find("content-length:", at + 1))
    count++;
  EXPECT_EQ(count, 1u);
}

TEST(HttpHardening, SerializeRequestRoundTrips) {
  HttpRequest req;
  req.method = "PUT";
  req.path = "/kv/7";
  req.body = "value";
  auto pos = std::make_shared<size_t>(0);
  HttpRequest back;
  ASSERT_EQ(read_request_status(string_source(serialize(req), pos), back),
            ReadStatus::kOk);
  EXPECT_EQ(back.method, "PUT");
  EXPECT_EQ(back.path, "/kv/7");
  EXPECT_EQ(back.body, "value");
}

TEST(HttpHardening, ResponseStatusLineHasRealReasonPhrase) {
  HttpResponse resp;
  resp.status = 404;
  EXPECT_NE(serialize(resp).find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  resp.status = 503;
  EXPECT_NE(serialize(resp).find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  resp.status = 299;  // unknown code in a known class
  EXPECT_NE(serialize(resp).find("HTTP/1.1 299 OK\r\n"), std::string::npos);
}

TEST(HttpHardening, SerializeResponseAuthoritativeContentLength) {
  HttpResponse resp;
  resp.status = 200;
  resp.headers["Content-Length"] = "999";  // stale caller value: ignored
  resp.body = "four";
  const std::string wire = serialize(resp);
  EXPECT_NE(wire.find("Content-Length: 4\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

TEST(HttpHardening, ResponseRoundTripsThroughStatusReader) {
  HttpResponse resp;
  resp.status = 201;
  resp.body = "made";
  auto pos = std::make_shared<size_t>(0);
  HttpResponse back;
  const std::string wire = serialize(resp);
  ASSERT_EQ(read_response_status(string_source(wire, pos), back), ReadStatus::kOk);
  EXPECT_EQ(back.status, 201);
  EXPECT_EQ(back.body, "made");
}

// --- connect-timeout semantics ----------------------------------------------

TEST(HttpHardening, ConnectTimeoutReturnsDeadSocketNotAbort) {
  // No listener on this port: the old path SBD_CHECK_MSG-aborted the
  // process. Now: a valid-but-dead socket (ECONNREFUSED semantics).
  Socket s = Network::instance().connect(45999, /*timeoutMs=*/50);
  ASSERT_TRUE(s.valid());
  char buf[8];
  EXPECT_EQ(s.read(buf, sizeof buf), 0u);  // immediate EOF
  s.write("dropped", 7);                   // discarded, not a crash
  s.close();
}

}  // namespace
}  // namespace sbd::net
