// Loopback network, HTTP framing, transactional sockets.
#include <gtest/gtest.h>

#include <thread>

#include "api/sbd.h"
#include "net/http.h"
#include "net/loopback.h"

namespace sbd::net {
namespace {

TEST(Pipe, ByteStreamRoundTrip) {
  Pipe p;
  p.write("hello", 5);
  char buf[8] = {};
  EXPECT_EQ(p.read(buf, 8), 5u);
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST(Pipe, EofAfterCloseWrite) {
  Pipe p;
  p.write("x", 1);
  p.close_write();
  char c;
  EXPECT_EQ(p.read(&c, 1), 1u);
  EXPECT_EQ(p.read(&c, 1), 0u);
}

TEST(Pipe, BlockingReadWokenByWriter) {
  Pipe p;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    p.write("late", 4);
  });
  char buf[8];
  EXPECT_EQ(p.read(buf, 8), 4u);
  writer.join();
}

TEST(Network, ConnectAcceptPair) {
  auto listener = Network::instance().listen(8001);
  std::thread server([&] {
    Socket s = listener.accept();
    char buf[16] = {};
    const size_t n = s.read(buf, 16);
    s.write(std::string("echo:") + std::string(buf, n));
    s.close();
  });
  Socket c = Network::instance().connect(8001);
  c.write("ping");
  char buf[32] = {};
  size_t total = 0, n;
  while ((n = c.read(buf + total, sizeof(buf) - total)) > 0) total += n;
  EXPECT_EQ(std::string(buf, total), "echo:ping");
  server.join();
  listener.close();
}

TEST(Network, ListenerCloseUnblocksAccept) {
  auto listener = Network::instance().listen(8002);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.close();
  });
  Socket s = listener.accept();
  EXPECT_FALSE(s.valid());
  t.join();
}

TEST(Http, RequestSerializeParseRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/orders?id=5";
  req.headers["Cookie"] = "sid=abc";
  req.body = "payload";
  const std::string wire = serialize(req);
  size_t pos = 0;
  auto readFn = [&](void* out, size_t n) {
    const size_t take = std::min(n, wire.size() - pos);
    memcpy(out, wire.data() + pos, take);
    pos += take;
    return take;
  };
  HttpRequest back;
  ASSERT_TRUE(read_request(readFn, back));
  EXPECT_EQ(back.method, "POST");
  EXPECT_EQ(back.path, "/orders?id=5");
  EXPECT_EQ(back.headers.at("Cookie"), "sid=abc");
  EXPECT_EQ(back.body, "payload");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "nope";
  const std::string wire = serialize(resp);
  size_t pos = 0;
  auto readFn = [&](void* out, size_t n) {
    const size_t take = std::min(n, wire.size() - pos);
    memcpy(out, wire.data() + pos, take);
    pos += take;
    return take;
  };
  HttpResponse back;
  ASSERT_TRUE(read_response(readFn, back));
  EXPECT_EQ(back.status, 404);
  EXPECT_EQ(back.body, "nope");
}

TEST(Http, EofBeforeRequestReturnsFalse) {
  auto readFn = [](void*, size_t) -> size_t { return 0; };
  HttpRequest req;
  EXPECT_FALSE(read_request(readFn, req));
}

TEST(TxSocketT, WritesDeferredToCommit) {
  auto listener = Network::instance().listen(8003);
  std::thread server([&] {
    Socket s = listener.accept();
    char buf[16] = {};
    size_t total = 0, n;
    while (total < 4 && (n = s.read(buf + total, sizeof(buf) - total)) > 0) total += n;
    EXPECT_EQ(std::string(buf, total), "data");
    s.close();
  });
  {
    TxSocket tx(Network::instance().connect(8003));
    run_sbd([&] {
      tx.write("data");
      // Deferred: the server has not seen anything yet; check buffered.
      EXPECT_EQ(tx.buffered_bytes(), 4u);
      split();  // commit flushes to the wire
      EXPECT_EQ(tx.buffered_bytes(), 0u);
    });
    tx.close();
  }
  server.join();
  listener.close();
}

TEST(TxSocketT, ReadsReplayedAfterAbort) {
  auto listener = Network::instance().listen(8004);
  std::thread server([&] {
    Socket s = listener.accept();
    s.write("abcdef", 6);
    s.close();
  });
  TxSocket tx(Network::instance().connect(8004));
  std::string first, retry;
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    char buf[4] = {};
    size_t got = 0;
    while (got < 3) got += tx.read(buf + got, 3 - got);
    if (!aborted) {
      aborted = true;
      first.assign(buf, 3);
      core::abort_and_restart(core::tls_context());
    }
    retry.assign(buf, 3);
    split();
  });
  EXPECT_EQ(first, "abc");
  EXPECT_EQ(retry, "abc") << "B_R must replay consumed network input";
  run_sbd([&] {
    char buf[4] = {};
    size_t got = 0;
    while (got < 3) got += tx.read(buf + got, 3 - got);
    EXPECT_EQ(std::string(buf, 3), "def");
  });
  tx.close();
  server.join();
  listener.close();
}

TEST(SessionStoreT, CountsPerSession) {
  SessionStore store;
  EXPECT_EQ(store.bump("a"), 1);
  EXPECT_EQ(store.bump("a"), 2);
  EXPECT_EQ(store.bump("b"), 1);
  EXPECT_EQ(store.lookup("a"), 2);
  EXPECT_EQ(store.lookup("missing"), 0);
  EXPECT_EQ(store.size(), 2u);
}

TEST(StringManagerT, CacheBehavior) {
  StringManager cached(true);
  const std::string a = cached.status_message(200, "ok");
  EXPECT_EQ(cached.status_message(200, "ok"), a);
  EXPECT_EQ(cached.cache_size(), 1u);
  StringManager uncached(false);
  uncached.status_message(200, "ok");
  EXPECT_EQ(uncached.cache_size(), 0u);
}

}  // namespace
}  // namespace sbd::net
