#include "raytrace/raytrace.h"

#include <gtest/gtest.h>

namespace sbd::raytrace {
namespace {

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).x, 5);
  EXPECT_DOUBLE_EQ((b - a).z, 3);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
  EXPECT_NEAR((Vec3{10, 0, 0}).normalized().x, 1.0, 1e-12);
}

TEST(Intersect, HitsSphereHeadOn) {
  Scene s;
  s.spheres.push_back(Sphere{{0, 0, 5}, 1, {}});
  Ray r{{0, 0, 0}, {0, 0, 1}};
  const HitInfo h = intersect(s, r);
  ASSERT_TRUE(h.hit);
  EXPECT_NEAR(h.t, 4.0, 1e-9);
  EXPECT_NEAR(h.normal.z, -1.0, 1e-9);
}

TEST(Intersect, MissesOffAxis) {
  Scene s;
  s.spheres.push_back(Sphere{{0, 0, 5}, 1, {}});
  Ray r{{0, 3, 0}, {0, 0, 1}};
  EXPECT_FALSE(intersect(s, r).hit);
}

TEST(Intersect, NearestWins) {
  Scene s;
  s.spheres.push_back(Sphere{{0, 0, 10}, 1, {}});
  Sphere near{{0, 0, 5}, 1, {}};
  near.mat.color = {1, 0, 0};
  s.spheres.push_back(near);
  const HitInfo h = intersect(s, Ray{{0, 0, 0}, {0, 0, 1}});
  ASSERT_TRUE(h.hit);
  EXPECT_NEAR(h.t, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.mat.color.x, 1);
}

TEST(Intersect, PlaneFromAbove) {
  Scene s;
  s.planes.push_back(Plane{{0, 0, 0}, {0, 1, 0}, {}});
  const HitInfo h = intersect(s, Ray{{0, 2, 0}, Vec3{0, -1, 0}});
  ASSERT_TRUE(h.hit);
  EXPECT_NEAR(h.t, 2.0, 1e-9);
}

TEST(Trace, BackgroundWhenNothingHit) {
  Scene s;
  const Vec3 c = trace(s, Ray{{0, 0, 0}, {0, 0, 1}});
  EXPECT_DOUBLE_EQ(c.x, s.background.x);
}

TEST(Trace, ShadowsDarkenOccludedPoints) {
  Scene s;
  s.planes.push_back(Plane{{0, 0, 0}, {0, 1, 0}, {}});
  s.lights.push_back(Light{{0, 10, 0}, {1, 1, 1}});
  // Point on the plane, lit from straight above.
  const Vec3 lit = trace(s, Ray{{0, 3, -1}, Vec3{0, -1, 0.3}.normalized()});
  // Now block the light with a sphere.
  s.spheres.push_back(Sphere{{0, 5, 0}, 2, {}});
  const Vec3 shadowed = trace(s, Ray{{0, 3, -1}, Vec3{0, -1, 0.3}.normalized()});
  EXPECT_LT(shadowed.x + shadowed.y + shadowed.z, lit.x + lit.y + lit.z);
}

TEST(PackColor, ClampsAndGammas) {
  EXPECT_EQ(pack_color({0, 0, 0}), 0u);
  EXPECT_EQ(pack_color({1, 1, 1}), 0xFFFFFFu);
  EXPECT_EQ(pack_color({5, -1, 1}), 0xFF00FFu);  // clamped
}

TEST(Render, DeterministicImage) {
  const Scene s = demo_scene(42);
  std::vector<uint32_t> img1(64 * 48), img2(64 * 48);
  render_rows(s, 64, 48, 0, 48, img1.data());
  render_rows(s, 64, 48, 0, 48, img2.data());
  EXPECT_EQ(image_checksum(img1.data(), img1.size()),
            image_checksum(img2.data(), img2.size()));
}

TEST(Render, RowPartitioningMatchesFullRender) {
  const Scene s = demo_scene(7);
  std::vector<uint32_t> whole(32 * 32), parts(32 * 32);
  render_rows(s, 32, 32, 0, 32, whole.data());
  render_rows(s, 32, 32, 0, 16, parts.data());
  render_rows(s, 32, 32, 16, 32, parts.data());
  EXPECT_EQ(whole, parts);
}

TEST(DemoScene, SeedControlsLayout) {
  const Scene a = demo_scene(1), b = demo_scene(2), a2 = demo_scene(1);
  EXPECT_EQ(a.spheres.size(), a2.spheres.size());
  EXPECT_DOUBLE_EQ(a.spheres[0].center.x, a2.spheres[0].center.x);
  EXPECT_NE(a.spheres[0].center.x, b.spheres[0].center.x);
}

}  // namespace
}  // namespace sbd::raytrace
