// Embedded database: SQL subset, ACID, locking, the SBD wrapper.
#include "db/db.h"

#include <gtest/gtest.h>

#include <thread>

#include "api/sbd.h"
#include "db/sql.h"
#include "db/txwrapper.h"

namespace sbd::db {
namespace {

std::unique_ptr<Database> fresh_db() {
  auto db = std::make_unique<Database>();
  auto c = db->connect();
  c->execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)");
  return db;
}

TEST(Sql, ParseCreate) {
  auto st = parse_sql("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)");
  EXPECT_EQ(st.kind, StmtKind::kCreate);
  EXPECT_EQ(st.createSchema.table, "T");
  ASSERT_EQ(st.createSchema.columns.size(), 2u);
  EXPECT_FALSE(st.createSchema.columns[0].isText);
  EXPECT_TRUE(st.createSchema.columns[1].isText);
  EXPECT_EQ(st.createSchema.pkColumn, 0);
}

TEST(Sql, ParseInsertWithParamsAndLiterals) {
  auto st = parse_sql("INSERT INTO t VALUES (1, ?, 'text', ?)");
  EXPECT_EQ(st.kind, StmtKind::kInsert);
  ASSERT_EQ(st.insertValues.size(), 4u);
  EXPECT_FALSE(st.insertValues[0].isParam);
  EXPECT_TRUE(st.insertValues[1].isParam);
  EXPECT_EQ(st.insertValues[1].paramIndex, 0);
  EXPECT_EQ(as_str(st.insertValues[2].literal), "text");
  EXPECT_EQ(st.insertValues[3].paramIndex, 1);
  EXPECT_EQ(st.paramCount, 2);
}

TEST(Sql, ParseSelectWhereConjunction) {
  auto st = parse_sql("SELECT a, b FROM t WHERE a = ? AND b <> 5");
  EXPECT_EQ(st.kind, StmtKind::kSelect);
  ASSERT_EQ(st.selectCols.size(), 2u);
  ASSERT_EQ(st.where.size(), 2u);
  EXPECT_EQ(st.where[0].op, CmpOp::kEq);
  EXPECT_EQ(st.where[1].op, CmpOp::kNe);
}

TEST(Sql, ParseAggregates) {
  EXPECT_EQ(parse_sql("SELECT COUNT(*) FROM t").agg, AggKind::kCount);
  auto st = parse_sql("SELECT SUM(balance) FROM t WHERE id < 10");
  EXPECT_EQ(st.agg, AggKind::kSum);
  EXPECT_EQ(st.aggColumn, "BALANCE");
}

TEST(Sql, RejectsGarbage) {
  EXPECT_THROW(parse_sql("DROP TABLE t"), DbError);
  EXPECT_THROW(parse_sql("SELECT FROM"), DbError);
  EXPECT_THROW(parse_sql("CREATE TABLE t (a INT)"), DbError);  // no pk
}

TEST(Db, InsertSelectRoundTrip) {
  auto db = fresh_db();
  auto c = db->connect();
  c->execute("INSERT INTO accounts VALUES (?, ?, ?)", {int64_t{1}, "alice", int64_t{100}});
  c->execute("INSERT INTO accounts VALUES (?, ?, ?)", {int64_t{2}, "bob", int64_t{50}});
  auto rs = c->execute("SELECT owner, balance FROM accounts WHERE id = ?", {int64_t{1}});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.str_at(0, 0), "alice");
  EXPECT_EQ(rs.int_at(0, 1), 100);
}

TEST(Db, UpdateAndDelete) {
  auto db = fresh_db();
  auto c = db->connect();
  c->execute("INSERT INTO accounts VALUES (1, 'a', 10)");
  c->execute("UPDATE accounts SET balance = 20 WHERE id = 1");
  EXPECT_EQ(c->execute("SELECT balance FROM accounts WHERE id = 1").int_at(0, 0), 20);
  EXPECT_EQ(c->execute("DELETE FROM accounts WHERE id = 1").updateCount, 1);
  EXPECT_EQ(c->execute("SELECT * FROM accounts WHERE id = 1").size(), 0u);
}

TEST(Db, DuplicatePkRejected) {
  auto db = fresh_db();
  auto c = db->connect();
  c->execute("INSERT INTO accounts VALUES (1, 'a', 10)");
  EXPECT_THROW(c->execute("INSERT INTO accounts VALUES (1, 'b', 20)"), DbError);
}

TEST(Db, ScanWithPredicates) {
  auto db = fresh_db();
  auto c = db->connect();
  for (int64_t i = 0; i < 10; i++)
    c->execute("INSERT INTO accounts VALUES (?, 'u', ?)", {i, i * 10});
  auto rs = c->execute("SELECT id FROM accounts WHERE balance >= 50 AND balance < 80");
  EXPECT_EQ(rs.size(), 3u);  // 50, 60, 70
  EXPECT_EQ(c->execute("SELECT COUNT(*) FROM accounts").int_at(0, 0), 10);
  EXPECT_EQ(c->execute("SELECT SUM(balance) FROM accounts").int_at(0, 0), 450);
}

TEST(Db, RollbackRestoresUpdatesAndDeletes) {
  auto db = fresh_db();
  auto c = db->connect();
  c->execute("INSERT INTO accounts VALUES (1, 'a', 10)");
  c->begin();
  c->execute("UPDATE accounts SET balance = 99 WHERE id = 1");
  c->execute("DELETE FROM accounts WHERE id = 1");
  c->execute("INSERT INTO accounts VALUES (2, 'b', 20)");
  c->rollback();
  auto rs = c->execute("SELECT balance FROM accounts WHERE id = 1");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.int_at(0, 0), 10);
  EXPECT_EQ(c->execute("SELECT COUNT(*) FROM accounts").int_at(0, 0), 1);
}

TEST(Db, CommitPersists) {
  auto db = fresh_db();
  auto c = db->connect();
  c->begin();
  c->execute("INSERT INTO accounts VALUES (5, 'e', 500)");
  c->commit();
  auto c2 = db->connect();
  EXPECT_EQ(c2->execute("SELECT balance FROM accounts WHERE id = 5").int_at(0, 0), 500);
}

TEST(Db, RowLocksSerializeConflictingTxns) {
  auto db = fresh_db();
  auto c1 = db->connect();
  c1->execute("INSERT INTO accounts VALUES (1, 'a', 0)");
  constexpr int kThreads = 4, kIncs = 50;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; t++) {
    ts.emplace_back([&db] {
      auto c = db->connect();
      for (int i = 0; i < kIncs; i++) {
        c->begin();
        auto rs = c->execute("SELECT balance FROM accounts WHERE id = 1");
        const int64_t bal = rs.int_at(0, 0);
        c->execute("UPDATE accounts SET balance = ? WHERE id = 1", {bal + 1});
        c->commit();
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c1->execute("SELECT balance FROM accounts WHERE id = 1").int_at(0, 0),
            kThreads * kIncs);
}

TEST(Db, DeadlockDetectedByTimeout) {
  auto db = fresh_db();
  db->set_lock_timeout_ms(50);
  auto setup = db->connect();
  setup->execute("INSERT INTO accounts VALUES (1, 'a', 0)");
  setup->execute("INSERT INTO accounts VALUES (2, 'b', 0)");
  std::atomic<int> deadlocks{0};
  std::atomic<int> phase{0};
  auto worker = [&](int64_t first, int64_t second) {
    auto c = db->connect();
    try {
      c->begin();
      c->execute("UPDATE accounts SET balance = 1 WHERE id = ?", {first});
      phase++;
      while (phase.load() < 2) std::this_thread::yield();
      c->execute("UPDATE accounts SET balance = 1 WHERE id = ?", {second});
      c->commit();
    } catch (const DbDeadlock&) {
      deadlocks++;
      c->rollback();
    }
  };
  std::thread t1(worker, 1, 2), t2(worker, 2, 1);
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
}

TEST(TxWrapper, SectionCommitCommitsDb) {
  auto db = fresh_db();
  TxDbConnection conn(*db);
  run_sbd([&] {
    conn.execute("INSERT INTO accounts VALUES (1, 'sbd', 42)");
    // Not yet visible to other connections: still inside the section.
    auto other = db->connect();
    // (row lock is held; a SELECT by pk would block — check via COUNT on
    // a fresh table-level read after commit instead)
    split();  // section ends -> DB transaction commits
    EXPECT_EQ(other->execute("SELECT balance FROM accounts WHERE id = 1").int_at(0, 0),
              42);
  });
}

TEST(TxWrapper, SectionAbortRollsBackDb) {
  auto db = fresh_db();
  TxDbConnection conn(*db);
  run_sbd([&] {
    static bool aborted;
    aborted = false;
    split();
    conn.execute("INSERT INTO accounts VALUES (7, 'x', 7)");
    if (!aborted) {
      aborted = true;
      core::abort_and_restart(core::tls_context());
    }
    split();
  });
  auto c = db->connect();
  // The aborted attempt rolled back; the retry inserted exactly once.
  EXPECT_EQ(c->execute("SELECT COUNT(*) FROM accounts WHERE id = 7").int_at(0, 0), 1);
}

TEST(TxWrapper, UndoBytesReportedForTable8) {
  auto db = fresh_db();
  TxDbConnection conn(*db);
  run_sbd([&] {
    conn.execute("INSERT INTO accounts VALUES (3, 'm', 30)");
    EXPECT_GT(core::tls_context().txn.buffer_bytes(), 0u);
    split();
    EXPECT_EQ(core::tls_context().txn.buffer_bytes(), 0u);
  });
}

}  // namespace
}  // namespace sbd::db
