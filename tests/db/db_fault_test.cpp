// Substrate fault injection (db): spurious lock-wait timeouts
// (DbDeadlock) abort and retry the whole atomic section — memory via
// the STM undo log, rows via the DB undo log — and commit-fence faults
// only delay, never fail. Invariants must hold through both.
#include <gtest/gtest.h>

#include <vector>

#include "api/sbd.h"
#include "core/fault.h"
#include "db/db.h"
#include "db/txwrapper.h"

namespace sbd::db {
namespace {

// SQL helpers return before any split so no ResultSet survives a
// checkpoint on the stack.
int64_t read_balance(TxDbConnection& conn, int64_t id) {
  auto rs = conn.execute("SELECT balance FROM accounts WHERE id = ?", {int64_t{id}});
  return rs.int_at(0, 0);
}

void transfer(TxDbConnection& conn, int64_t from, int64_t to, int64_t amount) {
  const int64_t bal = read_balance(conn, from);
  if (bal < amount) return;
  conn.execute("UPDATE accounts SET balance = ? WHERE id = ?",
               {int64_t{bal - amount}, int64_t{from}});
  const int64_t dst = read_balance(conn, to);
  conn.execute("UPDATE accounts SET balance = ? WHERE id = ?",
               {int64_t{dst + amount}, int64_t{to}});
}

void bump(TxDbConnection& conn, int64_t id) {
  conn.execute("UPDATE accounts SET balance = ? WHERE id = ?",
               {int64_t{read_balance(conn, id) + 1}, int64_t{id}});
}

TEST(DbFault, SingleThreadRetriesYieldExactResult) {
  Database database;
  {
    auto c = database.connect();
    c->execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
    c->execute("INSERT INTO accounts VALUES (0, 0)");
  }
  TxDbConnection conn(database);  // outside any section: never rolled back
  {
    fault::PlanScope plan(fault::single_site(fault::Site::kDbLockTimeout, 0.3, 5));
    run_sbd([&] {
      for (int i = 0; i < 40; i++) {
        bump(conn, 0);
        split();
      }
    });
    EXPECT_GT(fault::fired(fault::Site::kDbLockTimeout), 0u)
        << "the plan must actually have exercised the retry path";
  }
  run_sbd([&] { EXPECT_EQ(read_balance(conn, 0), 40); });
}

TEST(DbFault, ConcurrentTransfersConserveBalanceUnderFaults) {
  constexpr int64_t kAccounts = 4;
  constexpr int64_t kInitial = 100;
  Database database;
  {
    auto c = database.connect();
    c->execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
    for (int64_t i = 0; i < kAccounts; i++)
      c->execute("INSERT INTO accounts VALUES (?, ?)", {int64_t{i}, int64_t{kInitial}});
  }
  {
    fault::FaultPlan p;
    p.seed = 11;
    p.delayNanos = 10'000;  // keep the commit-fence stalls short
    p.with(fault::Site::kDbLockTimeout, 0.15).with(fault::Site::kDbCommit, 0.3);
    fault::PlanScope plan(p);
    std::vector<SbdThread> ts;
    for (int t = 0; t < 3; t++) {
      ts.emplace_back([&, t] {
        TxDbConnection conn(database);
        for (int i = 0; i < 30; i++) {
          transfer(conn, (t + i) % kAccounts, (t + i + 1) % kAccounts, 5);
          split();
        }
      });
    }
    for (auto& t : ts) t.start();
    for (auto& t : ts) t.join();
    EXPECT_GT(fault::fired(fault::Site::kDbLockTimeout), 0u);
    EXPECT_GT(fault::fired(fault::Site::kDbCommit), 0u);
  }
  auto c = database.connect();
  EXPECT_EQ(c->execute("SELECT SUM(balance) FROM accounts").int_at(0, 0),
            kAccounts * kInitial)
      << "transfers must conserve the total through aborts and retries";
}

}  // namespace
}  // namespace sbd::db
