// Property tests for the embedded database: randomized concurrent
// transaction mixes over parameter sweeps, asserting ACID invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "db/db.h"

namespace sbd::db {
namespace {

struct Mix {
  int threads;
  int txnsPerThread;
};

void PrintTo(const Mix& m, std::ostream* os) {
  *os << "threads=" << m.threads << " txns=" << m.txnsPerThread;
}

class DbMix : public ::testing::TestWithParam<Mix> {};

// Transfers between accounts with random deadlock-prone lock orders:
// money is conserved no matter how many transactions had to roll back.
TEST_P(DbMix, TransfersConserveMoneyUnderDeadlocks) {
  const auto mix = GetParam();
  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 500;
  Database db;
  db.set_lock_timeout_ms(20);
  {
    auto c = db.connect();
    c->execute("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
    for (int64_t i = 0; i < kAccounts; i++)
      c->execute("INSERT INTO acct VALUES (?, ?)", {i, kInitial});
  }
  std::atomic<int> rollbacks{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < mix.threads; t++) {
    ts.emplace_back([&, t] {
      auto c = db.connect();
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      for (int i = 0; i < mix.txnsPerThread; i++) {
        const int64_t a = static_cast<int64_t>(rng.below(kAccounts));
        int64_t b = static_cast<int64_t>(rng.below(kAccounts));
        if (b == a) b = (b + 1) % kAccounts;
        const int64_t amt = 1 + static_cast<int64_t>(rng.below(10));
        try {
          c->begin();
          auto ra = c->execute("SELECT bal FROM acct WHERE id = ?", {a});
          auto rb = c->execute("SELECT bal FROM acct WHERE id = ?", {b});
          if (ra.int_at(0, 0) >= amt) {
            c->execute("UPDATE acct SET bal = ? WHERE id = ?",
                       {ra.int_at(0, 0) - amt, a});
            c->execute("UPDATE acct SET bal = ? WHERE id = ?",
                       {rb.int_at(0, 0) + amt, b});
          }
          c->commit();
        } catch (const DbDeadlock&) {
          c->rollback();
          rollbacks++;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  auto c = db.connect();
  EXPECT_EQ(c->execute("SELECT SUM(bal) FROM acct").int_at(0, 0), kAccounts * kInitial);
}

// Insert-heavy mix: every committed insert is durable and counted
// exactly once; rolled-back inserts leave no residue.
TEST_P(DbMix, InsertsAreExactlyOnce) {
  const auto mix = GetParam();
  Database db;
  db.set_lock_timeout_ms(20);
  {
    auto c = db.connect();
    c->execute("CREATE TABLE evts (id INT PRIMARY KEY, src INT)");
  }
  std::atomic<int64_t> committed{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < mix.threads; t++) {
    ts.emplace_back([&, t] {
      auto c = db.connect();
      Rng rng(static_cast<uint64_t>(t) * 17 + 3);
      for (int i = 0; i < mix.txnsPerThread; i++) {
        const int64_t id = static_cast<int64_t>(t) * 1000000 + i;
        try {
          c->begin();
          c->execute("INSERT INTO evts VALUES (?, ?)", {id, int64_t{t}});
          if (rng.chance(0.2)) {  // simulate an application rollback
            c->rollback();
            continue;
          }
          c->commit();
          committed++;
        } catch (const DbDeadlock&) {
          c->rollback();
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  auto c = db.connect();
  EXPECT_EQ(c->execute("SELECT COUNT(*) FROM evts").int_at(0, 0), committed.load());
}

INSTANTIATE_TEST_SUITE_P(Mixes, DbMix,
                         ::testing::Values(Mix{1, 100}, Mix{2, 100}, Mix{4, 60},
                                           Mix{6, 40}));

}  // namespace
}  // namespace sbd::db
